(** Checkpoint certification and state-transfer bookkeeping.

    The protocol-independent half of checkpoint/recovery: how certificates
    are verified under each protocol's trust model, how checkpoint votes are
    tallied into proofs, and how a recovering replica picks what to install
    from the (possibly partly Byzantine) state-transfer offers it collected.
    The protocol modules own the other half — when to snapshot, who proposes
    or endorses a checkpoint, how transferred entries enter the order log.

    Trust models:
    - BFT certifies with 2f+1 signatures ({!Quorum_signed}) — at least f+1
      correct signers vouch for the image digest, standard PBFT.
    - CT runs under the crash-only model with no cryptography, so a
      certificate is just f+1 distinct senders' claims ({!Quorum_counted});
      at least one sender is correct.
    - SC/SCR certify with the coordinator pair's double signature
      ({!Pair_endorsed}): at most one member of a pair is faulty (the
      signal-on-fail assumption), so a doubly-signed checkpoint carries at
      least one correct signature.  SC's unpaired last candidate certifies
      with its single signature — by the sequential-failure assumption it is
      only coordinating after f failures, i.e. it is correct. *)

type scheme =
  | Quorum_signed of { quorum : int; member_ok : int -> bool }
  | Quorum_counted of { quorum : int; member_ok : int -> bool }
  | Pair_endorsed of { pair_ok : primary:int -> endorser:int option -> bool }
      (** [pair_ok] accepts exactly the legitimate (proposer, endorser)
          combinations: a pair's primary endorsed by its own shadow, or an
          unpaired candidate primary with no endorser. *)

val cert_payload : seq:int -> digest:string -> string
(** The byte string checkpoint signatures cover: the encoded [Checkpoint]
    message body, so wire votes and certificate proofs share signatures. *)

val verify_cert :
  verify:(signer:int -> msg:string -> signature:string -> bool) ->
  scheme:scheme ->
  Checkpoint.cert ->
  bool
(** Full certificate check: positive sequence number, distinct legitimate
    signers, enough of them for the scheme, and (except under
    [Quorum_counted]) every signature valid — endorsements over the same
    body-plus-first-signature payload as envelope endorsements. *)

(** Checkpoint vote tally: one vote per (sequence, signer), first wins. *)
module Tally : sig
  type t

  val create : unit -> t

  val add : t -> seq:int -> digest:string -> signer:int -> signature:string -> unit

  val count : t -> seq:int -> digest:string -> int
  (** Votes recorded for exactly this (seq, digest). *)

  val proof : t -> seq:int -> digest:string -> (int * string) list
  (** The (signer, signature) set behind [count] — a certificate proof once
      the count reaches quorum. *)

  val prune : t -> upto:int -> unit
  (** Drop votes at or below [upto] (sequence numbers already stable). *)
end

type offer = {
  st_from : int;  (** Responder (transport source, not envelope creator). *)
  st_cert : Checkpoint.cert option;
  st_image : string;
  st_entries : Checkpoint.entry list;
}
(** One [State_response], as recorded after the receiving protocol verified
    the certificate and image digest (offers failing those checks are
    rejected before they get here). *)

(** Per-process checkpoint/recovery bookkeeping, embedded in each protocol
    state record. *)
type state

val create : unit -> state

val tally : state -> Tally.t

val note_image : state -> seq:int -> image:string -> unit
(** Remember this process's own state image at a boundary (a small recent
    window is kept — enough to serve and endorse while the next checkpoint
    certifies). *)

val image_at : state -> seq:int -> string option

val note_stable : state -> cert:Checkpoint.cert -> image:string -> bool
(** Record a stable checkpoint with the image it certifies.  Returns [false]
    (and changes nothing) unless it is newer than the current stable one.
    The previous stable checkpoint is retained — it is what a
    [Stale_checkpoint] adversary serves. *)

val latest_stable : state -> (Checkpoint.cert * string) option
val previous_stable : state -> (Checkpoint.cert * string) option

val stable_seq : state -> int
(** Sequence number of the latest stable checkpoint, 0 when none. *)

val add_offer : state -> offer -> unit
(** Record a state-transfer offer, replacing any earlier offer from the same
    responder. *)

val clear_offers : state -> unit
val offers : state -> offer list

val best_image : state -> above:int -> (Checkpoint.cert * string * int) option
(** Among collected offers, the certified image with the highest checkpoint
    sequence number strictly above [above]: (certificate, image, responder). *)

val select_entries :
  quorum:int -> base:int -> entry_ok:(Checkpoint.entry -> bool) -> state -> Checkpoint.entry list
(** The longest contiguous log suffix starting at [base + 1] such that each
    entry's (sequence, digest) is claimed by at least [quorum] distinct
    responders and the chosen entry body passes [entry_ok] (digest
    recomputation).  With [quorum] covering at least one correct responder,
    no fabricated entry survives. *)

(** {2 Per-client delivery marks}

    The deterministic at-most-once filter that travels inside checkpoint
    images ({!Checkpoint.wrap_image}).  Raw delivered-key sets are pruned
    at each process's own truncation pace, so they can be neither compared
    nor transferred; the high-water marks depend only on the delivered
    order prefix, which agreement makes common to all correct processes.
    Assumes clients issue [client_seq] in increasing order (the paper's
    broadcast-client model): a request at or below its client's mark is a
    duplicate or superseded straggler either way. *)

val fresh_key : state -> Sof_smr.Request.key -> bool
(** Whether the key is above its client's mark (deliverable). *)

val mark_delivered : state -> Sof_smr.Request.key -> unit
(** Raise the key's client mark to its [client_seq] (never lowers). *)

val marks : state -> (int * int) list
(** All [(client, mark)] pairs, sorted by client — the canonical form
    {!Checkpoint.wrap_image} requires. *)

val merge_marks : state -> (int * int) list -> unit
(** Max-merge marks from an installed checkpoint image into local state. *)

val fetching : state -> bool
val fetch_anchor : state -> int
val begin_fetch : state -> have:int -> unit
val end_fetch : state -> unit
