module Simtime = Sof_sim.Simtime

(* Constructor-time validation failures surface as a dedicated exception
   caught at the harness/runtime boundary, never as a bare Invalid_argument
   escaping a protocol decision path (lint rule R4). *)
exception Invalid_config of string

type variant = SC | SCR

type timing = Static | Adaptive

let timing_name = function Static -> "static" | Adaptive -> "adaptive"

type t = {
  f : int;
  variant : variant;
  batching_interval : Simtime.t;
  batch_size_limit : int;
  digest : Sof_crypto.Digest_alg.t;
  pair_delay_estimate : Simtime.t;
  heartbeat_interval : Simtime.t;
  dumb_optimization : bool;
  checkpoint_interval : int;
  timing : timing;
}

let make ?(variant = SC) ?(batching_interval = Simtime.ms 100)
    ?(batch_size_limit = 1024) ?(digest = Sof_crypto.Digest_alg.MD5)
    ?(pair_delay_estimate = Simtime.ms 10) ?(heartbeat_interval = Simtime.ms 20)
    ?(dumb_optimization = true) ?(checkpoint_interval = 0) ?(timing = Static) ~f () =
  if f < 1 then raise (Invalid_config "Config.make: f must be at least 1");
  if checkpoint_interval < 0 then
    raise (Invalid_config "Config.make: checkpoint_interval must be non-negative");
  let positive name v =
    if Simtime.compare v Simtime.zero <= 0 then
      raise (Invalid_config (Printf.sprintf "Config.make: %s must be positive" name))
  in
  positive "batching_interval" batching_interval;
  positive "pair_delay_estimate" pair_delay_estimate;
  positive "heartbeat_interval" heartbeat_interval;
  {
    f;
    variant;
    batching_interval;
    batch_size_limit;
    digest;
    pair_delay_estimate;
    heartbeat_interval;
    dumb_optimization;
    checkpoint_interval;
    timing;
  }

let replica_count t = (2 * t.f) + 1

let pair_count t = match t.variant with SC -> t.f | SCR -> t.f + 1

let process_count t = replica_count t + pair_count t

let candidate_count t = t.f + 1

let check_rank t r =
  if r < 1 || r > candidate_count t then
    raise (Invalid_config (Printf.sprintf "Config: candidate rank %d out of range" r))

let primary_of_pair t r =
  check_rank t r;
  r - 1

let shadow_of_pair t r =
  check_rank t r;
  if r > pair_count t then
    raise (Invalid_config "Config.shadow_of_pair: candidate is unpaired");
  replica_count t + r - 1

let pair_rank_of t id =
  if id < pair_count t then Some (id + 1)
  else if id >= replica_count t && id < process_count t then
    Some (id - replica_count t + 1)
  else None

let counterpart t id =
  match pair_rank_of t id with
  | None -> None
  | Some r ->
    Some (if id < replica_count t then shadow_of_pair t r else primary_of_pair t r)

let is_shadow t id = id >= replica_count t

let candidate_is_pair t r =
  check_rank t r;
  r <= pair_count t

let candidate_members t r =
  if candidate_is_pair t r then [ primary_of_pair t r; shadow_of_pair t r ]
  else [ primary_of_pair t r ]

let all_processes t = List.init (process_count t) Fun.id

let pp fmt t =
  Format.fprintf fmt "%s(f=%d, n=%d, interval=%a, batch<=%dB)"
    (match t.variant with SC -> "SC" | SCR -> "SCR")
    t.f (process_count t) Simtime.pp t.batching_interval t.batch_size_limit
