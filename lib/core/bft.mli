(** The BFT baseline: Castro & Liskov's PBFT order protocol (OSDI '99), the
    comparison point of the paper's evaluation.

    n = 3f+1 replicas, primary = v mod n.  Fail-free flow (Figure 3b):
    pre-prepare (1-to-n from the primary), prepare (n-to-n; a replica is
    {e prepared} with a matching pre-prepare plus 2f prepares), commit
    (n-to-n; {e committed} with 2f+1 commits).  Requests are batched exactly
    as in SC so the comparison is one-to-one.

    Simplifications relative to the full system (documented in DESIGN.md): a
    compact view change — on timeout a replica broadcasts its prepared set;
    the new primary collects 2f+1 view-change messages and re-issues
    pre-prepares for every prepared order above the highest order it knows
    committed.  PBFT's stable checkpoints and log truncation are implemented
    (off by default via [checkpoint_interval = 0]); neither feature is on
    the fail-free critical path the paper measures. *)

type config = {
  f : int;
  batching_interval : Sof_sim.Simtime.t;
  batch_size_limit : int;
  digest : Sof_crypto.Digest_alg.t;
  view_change_timeout : Sof_sim.Simtime.t;
  checkpoint_interval : int;
      (** Checkpoint every this-many delivered sequence numbers; 0 (default)
          disables checkpointing and state transfer.  A checkpoint is stable
          once 2f+1 replicas sign the same state digest (PBFT §4.3). *)
  unsafe_digest_blind_votes : bool;
      (** Test-only mutant: count prepare/commit votes without matching them
          against the slot's pre-prepared digest, reintroducing the vote-
          pooling safety bug the durable-storage PR fixed.  Exists so the
          model checker's counterexample tests have a real, historically
          observed violation to rediscover; never enable it otherwise. *)
  timing : Config.timing;
      (** [Static] (default) keeps the configured view-change timeout;
          [Adaptive] probes the current primary, derives the suspicion
          budget from the measured round-trip (Jacobson RTO), and doubles
          it per consecutive view change, capped at 64 x the configured
          timeout.  Liveness-only: no safety property depends on it. *)
}

val make_config :
  ?batching_interval:Sof_sim.Simtime.t ->
  ?batch_size_limit:int ->
  ?digest:Sof_crypto.Digest_alg.t ->
  ?view_change_timeout:Sof_sim.Simtime.t ->
  ?checkpoint_interval:int ->
  ?unsafe_digest_blind_votes:bool ->
  ?timing:Config.timing ->
  f:int ->
  unit ->
  config
(** @raise Config.Invalid_config when [f < 1], [checkpoint_interval < 0],
    or [view_change_timeout] is non-positive. *)

val process_count : config -> int
(** [3f+1]. *)

type t

val create : ctx:Context.t -> config:config -> ?fault:Fault.t -> unit -> t
val start : t -> unit
val on_request : t -> Sof_smr.Request.t -> unit
val on_message : t -> src:int -> Message.envelope -> unit

val id : t -> int
val view : t -> int
val primary : t -> int
val max_committed : t -> int
val delivered_seq : t -> int

val request_recovery : t -> unit
(** Start state transfer: ask every replica for everything above this
    process's delivery point and install what comes back (certificate
    verified, image digest checked, each log entry backed by f+1 matching
    claims).  Called by the harness right after a crash-restart; also
    triggered internally when checkpoint traffic shows this process a full
    interval behind.  Idempotent while a fetch is in flight. *)

val log_length : t -> int
(** Retained order-log length — what truncation keeps bounded. *)

val stable_checkpoint_seq : t -> int
(** Latest stable checkpoint sequence number (0 when none). *)

val latest_stable : t -> (Checkpoint.cert * string) option
(** Latest stable checkpoint certificate with its image bytes — what a
    durable harness persists alongside the write-ahead log. *)

val client_marks : t -> (int * int) list
(** Per-client delivery high-water marks, sorted by client. *)

val recover_local : t -> cert:Checkpoint.cert option -> image:string ->
  entries:Checkpoint.entry list -> bool
(** Install locally persisted state (WAL replay) as a synthetic self-offer,
    verified exactly like a peer's state-transfer response: certificate,
    image digest, and per-entry digest checks all apply, so damaged or
    tampered suffixes are excluded rather than installed.  Returns whether
    delivery advanced; callers escalate to {!request_recovery} when the
    local log was damaged or insufficient. *)
