type scheme =
  | Quorum_signed of { quorum : int; member_ok : int -> bool }
  | Quorum_counted of { quorum : int; member_ok : int -> bool }
  | Pair_endorsed of { pair_ok : primary:int -> endorser:int option -> bool }

let cert_payload ~seq ~digest = Message.encode_body (Message.Checkpoint { seq; digest })

let distinct_signers proof =
  let rec go seen = function
    | [] -> true
    | (s, _) :: rest -> (not (List.exists (Int.equal s) seen)) && go (s :: seen) rest
  in
  go [] proof

let verify_cert ~verify ~scheme (c : Checkpoint.cert) =
  c.Checkpoint.cp_seq > 0
  && distinct_signers c.Checkpoint.cp_proof
  &&
  let payload = cert_payload ~seq:c.Checkpoint.cp_seq ~digest:c.Checkpoint.cp_digest in
  match scheme with
  | Quorum_signed { quorum; member_ok } ->
    List.length c.Checkpoint.cp_proof >= quorum
    && List.for_all (fun (s, _) -> member_ok s) c.Checkpoint.cp_proof
    && List.for_all
         (fun (s, signature) -> verify ~signer:s ~msg:payload ~signature)
         c.Checkpoint.cp_proof
  | Quorum_counted { quorum; member_ok } ->
    (* Crash-only model: claims are unsigned, distinct legitimate senders
       suffice (at least one of any f+1 is correct). *)
    List.length c.Checkpoint.cp_proof >= quorum
    && List.for_all (fun (s, _) -> member_ok s) c.Checkpoint.cp_proof
  | Pair_endorsed { pair_ok } -> begin
    let body =
      Message.Checkpoint { seq = c.Checkpoint.cp_seq; digest = c.Checkpoint.cp_digest }
    in
    match (c.Checkpoint.cp_proof, c.Checkpoint.cp_endorsement) with
    | [ (p, signature) ], None ->
      pair_ok ~primary:p ~endorser:None && verify ~signer:p ~msg:payload ~signature
    | [ (p, signature) ], Some (s, endorsement) ->
      pair_ok ~primary:p ~endorser:(Some s)
      && verify ~signer:p ~msg:payload ~signature
      && verify ~signer:s
           ~msg:(Message.endorsement_payload body signature)
           ~signature:endorsement
    | _ -> false
  end

module Tally = struct
  type vote = { v_digest : string; v_signer : int; v_signature : string }

  type t = { votes : (int, vote list) Hashtbl.t }

  let create () = { votes = Hashtbl.create 16 }

  let add t ~seq ~digest ~signer ~signature =
    let cur = Option.value (Hashtbl.find_opt t.votes seq) ~default:[] in
    if not (List.exists (fun v -> Int.equal v.v_signer signer) cur) then
      Hashtbl.replace t.votes seq
        ({ v_digest = digest; v_signer = signer; v_signature = signature } :: cur)

  let proof t ~seq ~digest =
    let cur = Option.value (Hashtbl.find_opt t.votes seq) ~default:[] in
    List.rev
      (List.filter_map
         (fun v ->
           if String.equal v.v_digest digest then Some (v.v_signer, v.v_signature)
           else None)
         cur)

  let count t ~seq ~digest = List.length (proof t ~seq ~digest)

  let prune t ~upto =
    let stale =
      Hashtbl.fold (fun seq _ acc -> if seq <= upto then seq :: acc else acc) t.votes []
    in
    List.iter (Hashtbl.remove t.votes) stale
end

type offer = {
  st_from : int;
  st_cert : Checkpoint.cert option;
  st_image : string;
  st_entries : Checkpoint.entry list;
}

(* How many boundary images to keep around: the latest plus enough history
   to endorse and serve checkpoints still in flight. *)
let image_window = 4

type state = {
  mutable images : (int * string) list;  (* newest first *)
  st_tally : Tally.t;
  mutable stables : (Checkpoint.cert * string) list;  (* newest first, at most 2 *)
  mutable st_offers : offer list;
  mutable st_fetching : bool;
  mutable st_fetch_anchor : int;
  st_marks : (int, int) Hashtbl.t;  (* client -> highest delivered client_seq *)
}

let create () =
  {
    images = [];
    st_tally = Tally.create ();
    stables = [];
    st_offers = [];
    st_fetching = false;
    st_fetch_anchor = 0;
    st_marks = Hashtbl.create 16;
  }

let tally state = state.st_tally

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let note_image state ~seq ~image =
  if not (List.exists (fun (s, _) -> Int.equal s seq) state.images) then
    state.images <- take image_window ((seq, image) :: state.images)

let image_at state ~seq =
  Option.map snd (List.find_opt (fun (s, _) -> Int.equal s seq) state.images)

let stable_seq state =
  match state.stables with [] -> 0 | (c, _) :: _ -> c.Checkpoint.cp_seq

let note_stable state ~cert ~image =
  if cert.Checkpoint.cp_seq <= stable_seq state then false
  else begin
    state.stables <- take 2 ((cert, image) :: state.stables);
    Tally.prune state.st_tally ~upto:cert.Checkpoint.cp_seq;
    true
  end

let latest_stable state =
  match state.stables with [] -> None | s :: _ -> Some s

let previous_stable state =
  match state.stables with _ :: p :: _ -> Some p | [] | [ _ ] -> None

let add_offer state offer =
  state.st_offers <-
    offer :: List.filter (fun o -> not (Int.equal o.st_from offer.st_from)) state.st_offers

let clear_offers state = state.st_offers <- []

let offers state = state.st_offers

let best_image state ~above =
  List.fold_left
    (fun best off ->
      match off.st_cert with
      | Some c when c.Checkpoint.cp_seq > above -> begin
        match best with
        | Some (bc, _, _) when bc.Checkpoint.cp_seq >= c.Checkpoint.cp_seq -> best
        | Some _ | None -> Some (c, off.st_image, off.st_from)
      end
      | Some _ | None -> best)
    None state.st_offers

let select_entries ~quorum ~base ~entry_ok state =
  let claims_at o =
    List.filter_map
      (fun off ->
        Option.map
          (fun e -> (off.st_from, e))
          (List.find_opt (fun (e : Checkpoint.entry) -> Int.equal e.Checkpoint.e_o o) off.st_entries))
      state.st_offers
  in
  let rec go acc o =
    let claims = claims_at o in
    let pick =
      List.find_opt
        (fun ((_, e) : int * Checkpoint.entry) ->
          let supporters =
            List.filter
              (fun ((_, e') : int * Checkpoint.entry) ->
                String.equal e'.Checkpoint.e_digest e.Checkpoint.e_digest)
              claims
          in
          List.length supporters >= quorum && entry_ok e)
        claims
    in
    match pick with
    | Some (_, e) -> go (e :: acc) (o + 1)
    | None -> List.rev acc
  in
  go [] (base + 1)

(* Per-client delivery high-water marks: the deterministic at-most-once
   filter that travels inside checkpoint images (see Checkpoint.wrap_image).
   Raw delivered-key sets are pruned at each process's own truncation pace,
   so they cannot be compared or transferred; the marks only depend on the
   delivered order prefix, which agreement makes common. *)

let fresh_key state (k : Sof_smr.Request.key) =
  match Hashtbl.find_opt state.st_marks k.Sof_smr.Request.client with
  | Some last -> k.Sof_smr.Request.client_seq > last
  | None -> true

let mark_delivered state (k : Sof_smr.Request.key) =
  let cur =
    Option.value
      (Hashtbl.find_opt state.st_marks k.Sof_smr.Request.client)
      ~default:(-1)
  in
  if k.Sof_smr.Request.client_seq > cur then
    Hashtbl.replace state.st_marks k.Sof_smr.Request.client
      k.Sof_smr.Request.client_seq

let marks state =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun client last acc -> (client, last) :: acc) state.st_marks [])

let merge_marks state marks =
  List.iter
    (fun (client, last) ->
      let cur = Option.value (Hashtbl.find_opt state.st_marks client) ~default:(-1) in
      if last > cur then Hashtbl.replace state.st_marks client last)
    marks

let fetching state = state.st_fetching

let fetch_anchor state = state.st_fetch_anchor

let begin_fetch state ~have =
  state.st_fetching <- true;
  state.st_fetch_anchor <- have

let end_fetch state = state.st_fetching <- false
