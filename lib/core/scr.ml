module Simtime = Sof_sim.Simtime
module Estimator = Sof_net.Delay_estimator
module Request = Sof_smr.Request
module Key_map = Request.Key_map
module Key_set = Request.Key_set
module Int_set = Set.Make (Int)

type status = Up | Down | Permanently_down

type votes = {
  mutable sources : Int_set.t;
  mutable proof : (int * string) list;
}

type order_state = {
  o : int;
  mutable digest : string;
  mutable keys : Request.key list;
  mutable have_order : bool;
  mutable vote_v : int;
  mutable acked : bool;
  mutable committed : bool;
  mutable null : bool;
  votes_by_digest : (string, votes) Hashtbl.t;
  (* trace spans currently open at this process for this order *)
  mutable sp_batch : bool;
  mutable sp_endorse : bool;
  mutable sp_order : bool;
  mutable sp_ack : bool;
}

type vc_rec = {
  vc_max_committed : int;
  vc_uncommitted : Message.order_info list;
}

type t = {
  ctx : Context.t;
  config : Config.t;
  fault : Fault.t;
  counterpart_fail_signal : string option;
  pair_rank : int option;
  counterpart : int option;
  all_ids : int list;
  (* view *)
  mutable view : int;
  mutable changing_view : bool;
  mutable target_view : int;  (* the view we are trying to install *)
  (* own pair *)
  mutable status : status;
  mutable fail_signalled : bool;  (* for the current down episode *)
  mutable last_heard : Simtime.t;
  mutable heartbeat_timer : Context.timer option;
  mutable beat : int;
  (* requests *)
  mutable pending : Request.t Key_map.t;
  mutable arrival : Simtime.t Key_map.t;
  mutable ordered_keys : Key_set.t;
  mutable delivered_keys : Key_set.t;
  mutable view_ordered_keys : Key_set.t;
      (* keys ordered under the current view, for the shadow's
         double-ordering check; reset at each view install *)
  mutable executed : Request.t Key_map.t;
      (* delivered request bodies, kept so the shadow can still verify a
         digest over re-proposed requests *)
  (* orders *)
  orders : (int, order_state) Hashtbl.t;
  mutable max_committed : int;
  mutable committed_digest : string;
  mutable delivered : int;
  (* coordinator primary *)
  mutable next_seq : int;
  mutable batch_timer : Context.timer option;
  mutable endorsement_watches : (int * Context.timer) list;
  (* coordinator shadow *)
  mutable expected_seq : int;
  mutable last_progress : Simtime.t;
  mutable stashed_endorsements : (Simtime.t * Message.envelope * Message.order_info) list;
      (* deferred Orders, kept with their decoded info so replay needs no
         re-dispatch *)
  mutable watch_timer : Context.timer option;
  (* view change *)
  view_changes : (int, (int * vc_rec) list ref) Hashtbl.t;
  mutable new_view_sent : bool;
  mutable nv_watch : Context.timer option;
  mutable start_covers : Message.order_info list;
  mutable anchor_seen : int;
      (* highest NewView anchor installed: every sequence at or below it is
         proven committed somewhere, so late orders from superseded views may
         still be adopted for those sequences (catch-up for a replica that
         lagged across the view change) *)
  mutable stash_future : (int * Message.envelope) list;
  echoed_fail_signals : (int * int * int, unit) Hashtbl.t;
      (* (pair, first signatory, view): echo and react once per view *)
  (* trace spans open at this process for fail-over accounting *)
  mutable failover_span : int option;
  mutable vc_span : int option;
  (* checkpointing and state transfer *)
  rcv : Recovery.state;
  mutable recent_delivered : (int * Request.t list) list;
      (* delivered batches retained for serving state transfer, newest first;
         pruned one interval behind the stable checkpoint.  Only maintained
         when checkpointing is on. *)
  mutable ckpt_proposals : (Message.envelope * int * string) list;
      (* phase-1 checkpoint proposals from this pair's primary, stashed by
         the shadow until its own boundary image for that seq exists *)
  mutable ckpt_certs : Checkpoint.cert list;
      (* verified certificates awaiting this process's own boundary image *)
  mutable fetch_timer : Context.timer option;
  (* adaptive timing (Config.Adaptive only; untouched in Static mode so
     seeded static runs keep the exact stream layout) *)
  ests : Estimator.t option array;  (* per-peer RTT estimators, lazy *)
  probe_accepted : int array;  (* highest reply nonce accepted per peer *)
  mutable probe_nonce : int;
  mutable fetch_backoff : int;  (* doublings applied to fetch retries *)
  mutable shadow_watch_level : int;  (* doublings on the shadow's stall budget *)
  mutable hb_level : int;  (* doublings on the heartbeat silence tolerance *)
  mutable stash_retry_armed : bool;
}

(* ------------------------------------------------------------ accessors *)

let id t = t.ctx.Context.id
let view t = t.view
let pair_status t = t.status
let max_committed t = t.max_committed
let delivered_seq t = t.delivered
let changing_view t = t.changing_view

let candidate_of_view t v =
  let k = Config.candidate_count t.config in
  let m = v mod k in
  if m = 0 then k else m

let coordinator_rank t = candidate_of_view t t.view

let quorum t = Config.process_count t.config - t.config.Config.f

let others t = List.filter (fun p -> not (Int.equal p (id t))) t.all_ids

let i_am_coordinator_primary t =
  (not t.changing_view)
  && Int.equal (id t) (Config.primary_of_pair t.config (coordinator_rank t))
  && t.status = Up

let i_am_coordinator_shadow t =
  (not t.changing_view)
  && Int.equal (id t) (Config.shadow_of_pair t.config (coordinator_rank t))
  && t.status = Up

let null_digest t = Batch.digest t.config.Config.digest (Batch.make [])

let can_transmit t = not (Fault.is_mute t.fault ~now:(t.ctx.Context.now ()))

let send t ~dst env = if can_transmit t then t.ctx.Context.send ~dst env
let multicast t ~dsts env = if can_transmit t then t.ctx.Context.multicast ~dsts env

(* Accountable bodies keep transferable signatures; the rest ride the wire
   authentication mode (possibly MAC vectors).  See Sc for the argument. *)
let signer_for t body =
  if Message.accountable_body body then t.ctx.Context.sign_acc
  else t.ctx.Context.sign

let verifier_for t body =
  if Message.accountable_body body then t.ctx.Context.verify_acc
  else t.ctx.Context.verify

let make_signed t body =
  let payload = Message.encode_body body in
  {
    Message.sender = id t;
    body;
    signature = signer_for t body payload;
    endorsement = None;
  }

let endorse t (env : Message.envelope) =
  let payload = Message.endorsement_payload env.Message.body env.Message.signature in
  { env with Message.endorsement = Some (id t, signer_for t env.Message.body payload) }

let authentic t (env : Message.envelope) =
  let payload = Message.encode_body env.Message.body in
  let verify = verifier_for t env.Message.body in
  verify ~signer:env.Message.sender ~msg:payload
    ~signature:env.Message.signature
  && begin
       match env.Message.endorsement with
       | None -> true
       | Some (who, s) ->
         not (Int.equal who env.Message.sender)
         && verify ~signer:who
              ~msg:(Message.endorsement_payload env.Message.body env.Message.signature)
              ~signature:s
     end

(* ------------------------------------------------------ adaptive timing *)

let adaptive t =
  match t.config.Config.timing with Config.Adaptive -> true | Config.Static -> false

let est_for t peer =
  match t.ests.(peer) with
  | Some e -> e
  | None ->
    let e = Estimator.create ~initial:t.config.Config.pair_delay_estimate () in
    t.ests.(peer) <- Some e;
    e

let pair_estimate t =
  match (t.config.Config.timing, t.counterpart) with
  | Config.Static, _ | _, None -> t.config.Config.pair_delay_estimate
  | Config.Adaptive, Some cp -> Estimator.timeout (est_for t cp)

let timer_cap t = Simtime.ns (64 * Simtime.to_ns t.config.Config.pair_delay_estimate)

(* Adaptive suspicion discipline, as in [Sc]: an expired adaptive deadline
   doubles its own budget and re-waits — the estimate lags a still-growing
   delay — and accuses only once the budget has walked to the hard cap.
   Static mode keeps the configured estimate and accuses on first miss. *)
let budget_at t ~level =
  Estimator.backed_off (pair_estimate t) ~level ~cap:(timer_cap t)

let can_back_off t ~level =
  adaptive t && Simtime.compare (budget_at t ~level) (timer_cap t) < 0

let send_probe t dst =
  t.probe_nonce <- t.probe_nonce + 1;
  let at = Simtime.to_ns (t.ctx.Context.now ()) in
  send t ~dst (make_signed t (Message.Probe { nonce = t.probe_nonce; at }))

let note_probe_reply t ~src ~nonce ~at =
  if adaptive t && nonce > t.probe_accepted.(src) then begin
    t.probe_accepted.(src) <- nonce;
    Estimator.observe (est_for t src)
      (Simtime.diff (t.ctx.Context.now ()) (Simtime.ns at))
  end

let doubly_signed_by_pair t ~rank (env : Message.envelope) =
  match env.Message.endorsement with
  | None -> false
  | Some (who, _) ->
    let members = Config.candidate_members t.config rank in
    List.mem env.Message.sender members && List.mem who members

(* ----------------------------------------------------------- order log *)

let get_order t o =
  match Hashtbl.find_opt t.orders o with
  | Some st -> st
  | None ->
    let st =
      {
        o;
        digest = "";
        keys = [];
        have_order = false;
        vote_v = 0;
        acked = false;
        committed = false;
        null = false;
        votes_by_digest = Hashtbl.create 4;
        sp_batch = false;
        sp_endorse = false;
        sp_order = false;
        sp_ack = false;
      }
    in
    Hashtbl.replace t.orders o st;
    st

let votes_for st digest =
  match Hashtbl.find_opt st.votes_by_digest digest with
  | Some v -> v
  | None ->
    let v = { sources = Int_set.empty; proof = [] } in
    Hashtbl.replace st.votes_by_digest digest v;
    v

let add_vote st ~digest ~source ~signature =
  let v = votes_for st digest in
  if not (Int_set.mem source v.sources) then begin
    v.sources <- Int_set.add source v.sources;
    v.proof <- (source, signature) :: v.proof
  end

(* Trace spans, as in Sc: [Context.emit] costs no simulated CPU, each sp_*
   flag means "open at this process", and closes only fire when the flag is
   set, so spans balance whenever the order commits locally. *)

let span_open t phase seq = t.ctx.Context.emit (Context.Span_open { phase; seq })
let span_close t phase seq = t.ctx.Context.emit (Context.Span_close { phase; seq })

let open_batch_span t st =
  if (not st.sp_batch) && not st.committed then begin
    st.sp_batch <- true;
    span_open t Context.Batch_phase st.o
  end

let open_endorse_span t st =
  if st.sp_batch && not st.sp_endorse then begin
    st.sp_endorse <- true;
    span_open t Context.Endorse_phase st.o
  end

let close_endorse_span t st =
  if st.sp_endorse then begin
    st.sp_endorse <- false;
    span_close t Context.Endorse_phase st.o
  end

let open_order_span t st =
  if st.sp_batch && not st.sp_order then begin
    st.sp_order <- true;
    span_open t Context.Order_phase st.o
  end

let ack_span_transition t st =
  if st.sp_order then begin
    st.sp_order <- false;
    span_close t Context.Order_phase st.o
  end;
  if st.sp_batch && not st.sp_ack then begin
    st.sp_ack <- true;
    span_open t Context.Ack_phase st.o
  end

let close_batch_spans t st =
  close_endorse_span t st;
  if st.sp_order then begin
    st.sp_order <- false;
    span_close t Context.Order_phase st.o
  end;
  if st.sp_ack then begin
    st.sp_ack <- false;
    span_close t Context.Ack_phase st.o
  end;
  if st.sp_batch then begin
    st.sp_batch <- false;
    span_close t Context.Batch_phase st.o
  end

(* ------------------------------------------------ checkpointing (SCR) *)
(* Pair-endorsed stable checkpoints, as in SC: the coordinator primary signs
   its state digest at each boundary and its shadow endorses after comparing
   against its own boundary image.  Every SCR candidate is a pair, so a
   certificate is always doubly signed — at most one pair member is faulty,
   so the double signature carries at least one correct process's word. *)

let log_length t = Hashtbl.length t.orders

let stable_checkpoint_seq t = Recovery.stable_seq t.rcv
let latest_stable t = Recovery.latest_stable t.rcv
let client_marks t = Recovery.marks t.rcv

let ckpt_pair_ok t ~primary ~endorser =
  match endorser with
  | None -> false
  | Some s ->
    let ranks = List.init (Config.candidate_count t.config) (fun i -> i + 1) in
    List.exists
      (fun r ->
        let members = Config.candidate_members t.config r in
        List.mem primary members && List.mem s members && not (Int.equal primary s))
      ranks

let ckpt_scheme t = Recovery.Pair_endorsed { pair_ok = ckpt_pair_ok t }

let cert_of_ckpt_env (env : Message.envelope) ~seq ~digest =
  {
    Checkpoint.cp_seq = seq;
    cp_digest = digest;
    cp_proof = [ (env.Message.sender, env.Message.signature) ];
    cp_endorsement = env.Message.endorsement;
  }

let truncate t upto =
  let stale = Hashtbl.fold (fun o _ acc -> if o <= upto then o :: acc else acc) t.orders [] in
  List.iter (Hashtbl.remove t.orders) stale;
  (* Keep one extra interval of delivered keys so a primary installed late
     that re-orders a just-delivered request is still deduplicated. *)
  let keep_above = upto - t.config.Config.checkpoint_interval in
  let dropped, kept = List.partition (fun (o, _) -> o <= keep_above) t.recent_delivered in
  List.iter
    (fun (_, requests) ->
      List.iter
        (fun (req : Request.t) ->
          t.delivered_keys <- Key_set.remove req.Request.key t.delivered_keys;
          t.ordered_keys <- Key_set.remove req.Request.key t.ordered_keys;
          t.executed <- Key_map.remove req.Request.key t.executed)
        requests)
    dropped;
  t.recent_delivered <- kept;
  t.ctx.Context.emit (Context.Log_truncated { upto; retained = Hashtbl.length t.orders })

(* A verified certificate becomes stable here once our own boundary image
   for that seq exists and matches; a cert running ahead of our delivery
   waits in [ckpt_certs] for the boundary to catch up. *)
let ckpt_adopt_cert t (cert : Checkpoint.cert) =
  let seq = cert.Checkpoint.cp_seq in
  if seq > Recovery.stable_seq t.rcv then begin
    match Recovery.image_at t.rcv ~seq with
    | Some image
      when String.equal
             (Checkpoint.image_digest t.config.Config.digest image)
             cert.Checkpoint.cp_digest ->
      if Recovery.note_stable t.rcv ~cert ~image then begin
        t.ctx.Context.emit
          (Context.Checkpoint_stable { seq; digest = cert.Checkpoint.cp_digest });
        span_close t Context.Checkpoint_phase seq;
        truncate t seq
      end
    | Some _ ->
      (* A certified digest that disagrees with our own image: not a state we
         can serve; ignore (a lagging or diverged replica recovers through
         state transfer instead). *)
      ()
    | None ->
      if not (List.exists (fun c -> Checkpoint.equal_cert c cert) t.ckpt_certs) then
        t.ckpt_certs <- cert :: t.ckpt_certs
  end

(* Shadow side of a phase-1 checkpoint proposal: endorse only when the
   primary's digest matches our own image for that boundary.  A mismatch is
   refused rather than fail-signalled — checkpoint certification is a
   liveness aid, and refusing keeps a diverged digest from being certified. *)
let shadow_handle_checkpoint t (env : Message.envelope) ~seq ~digest =
  match Recovery.image_at t.rcv ~seq with
  | Some image ->
    if String.equal (Checkpoint.image_digest t.config.Config.digest image) digest
    then begin
      let endorsed = endorse t env in
      multicast t ~dsts:(others t) endorsed;
      ckpt_adopt_cert t (cert_of_ckpt_env endorsed ~seq ~digest)
    end
  | None ->
    if seq > t.delivered then
      t.ckpt_proposals <- (env, seq, digest) :: t.ckpt_proposals

let retry_ckpt_stash t =
  let proposals = t.ckpt_proposals in
  t.ckpt_proposals <- [];
  List.iter
    (fun (env, seq, digest) ->
      if seq > Recovery.stable_seq t.rcv then begin
        match Recovery.image_at t.rcv ~seq with
        | Some _ -> shadow_handle_checkpoint t env ~seq ~digest
        | None -> t.ckpt_proposals <- (env, seq, digest) :: t.ckpt_proposals
      end)
    proposals;
  let certs = t.ckpt_certs in
  t.ckpt_certs <- [];
  List.iter (fun cert -> ckpt_adopt_cert t cert) certs

let checkpoint_boundary t o =
  let image =
    Checkpoint.wrap_image ~state:(t.ctx.Context.snapshot ()) ~marks:(Recovery.marks t.rcv)
  in
  t.ctx.Context.digest_charge (String.length image);
  let digest = Checkpoint.image_digest t.config.Config.digest image in
  Recovery.note_image t.rcv ~seq:o ~image;
  span_open t Context.Checkpoint_phase o;
  if i_am_coordinator_primary t then begin
    (* Phase 1: 1-to-1 to the shadow for endorsement. *)
    let env = make_signed t (Message.Checkpoint { seq = o; digest }) in
    send t ~dst:(Config.shadow_of_pair t.config (coordinator_rank t)) env
  end;
  retry_ckpt_stash t

(* ------------------------------------------------------------- delivery *)

let rec advance_delivery t =
  match Hashtbl.find_opt t.orders (t.delivered + 1) with
  | None -> ()
  | Some st when not st.committed -> ()
  | Some st ->
    if st.null || st.keys = [] then begin
      t.delivered <- st.o;
      let batch = Batch.make [] in
      t.ctx.Context.deliver ~seq:st.o batch;
      t.ctx.Context.emit (Context.Delivered { seq = st.o; batch });
      if t.config.Config.checkpoint_interval > 0 then begin
        t.recent_delivered <- (st.o, []) :: t.recent_delivered;
        if Checkpoint.is_boundary ~interval:t.config.Config.checkpoint_interval st.o then
          checkpoint_boundary t st.o
      end;
      advance_delivery t
    end
    else begin
      (* At-most-once: a coordinator installed after a view change may
         re-order requests an earlier view already committed.  Honest
         processes agree on the committed prefix, so they prune the same
         already-delivered keys and execute identical sub-batches. *)
      let fresh =
        List.filter
          (fun k ->
            (not (Key_set.mem k t.delivered_keys))
            && (t.config.Config.checkpoint_interval = 0 || Recovery.fresh_key t.rcv k))
          st.keys
      in
      let requests = List.filter_map (fun k -> Key_map.find_opt k t.pending) fresh in
      if Int.equal (List.length requests) (List.length fresh) then begin
        t.delivered <- st.o;
        List.iter
          (fun k ->
            t.delivered_keys <- Key_set.add k t.delivered_keys;
            if t.config.Config.checkpoint_interval > 0 then
              Recovery.mark_delivered t.rcv k;
            (match Key_map.find_opt k t.pending with
            | Some r -> t.executed <- Key_map.add k r t.executed
            | None -> ());
            t.pending <- Key_map.remove k t.pending;
            t.arrival <- Key_map.remove k t.arrival)
          st.keys;
        let batch = Batch.make requests in
        t.ctx.Context.deliver ~seq:st.o batch;
        t.ctx.Context.emit (Context.Delivered { seq = st.o; batch });
        if t.config.Config.checkpoint_interval > 0 then begin
          t.recent_delivered <- (st.o, requests) :: t.recent_delivered;
          if Checkpoint.is_boundary ~interval:t.config.Config.checkpoint_interval st.o then
            checkpoint_boundary t st.o
        end;
        advance_delivery t
      end
    end

let record_commit t st =
  if not st.committed then begin
    close_batch_spans t st;
    st.committed <- true;
    if st.o > t.max_committed then begin
      t.max_committed <- st.o;
      t.committed_digest <- st.digest
    end;
    t.ctx.Context.emit (Context.Committed { seq = st.o; digest = st.digest; keys = st.keys });
    advance_delivery t
  end

let try_commit t st =
  if st.have_order && not st.committed then begin
    let v = votes_for st st.digest in
    if Int_set.cardinal v.sources >= quorum t then begin
      record_commit t st;
      if st.null && t.start_covers <> [] then begin
        let covered = t.start_covers in
        t.start_covers <- [];
        List.iter
          (fun (info : Message.order_info) ->
            let cst = get_order t info.Message.o in
            if not cst.committed then begin
              cst.have_order <- true;
              cst.digest <- info.Message.digest;
              cst.keys <- info.Message.keys;
              record_commit t cst
            end)
          covered
      end;
      advance_delivery t
    end
  end

let send_ack t st =
  if st.have_order && not st.acked then begin
    st.acked <- true;
    ack_span_transition t st;
    let body = Message.Ack { c = st.vote_v; o = st.o; digest = st.digest } in
    multicast t ~dsts:t.all_ids (make_signed t body)
  end

let accept_order t (env : Message.envelope) ~v ~(info : Message.order_info) =
  let st = get_order t info.Message.o in
  if st.have_order then begin
    if String.equal st.digest info.Message.digest then begin
      add_vote st ~digest:st.digest ~source:env.Message.sender
        ~signature:env.Message.signature;
      (match env.Message.endorsement with
      | Some (who, s) -> add_vote st ~digest:st.digest ~source:who ~signature:s
      | None -> ());
      send_ack t st;
      try_commit t st
    end
  end
  else begin
    st.have_order <- true;
    st.digest <- info.Message.digest;
    st.keys <- info.Message.keys;
    st.vote_v <- v;
    open_batch_span t st;
    close_endorse_span t st;
    open_order_span t st;
    if info.Message.keys = [] then st.null <- true;
    List.iter (fun k -> t.ordered_keys <- Key_set.add k t.ordered_keys) info.Message.keys;
    add_vote st ~digest:st.digest ~source:env.Message.sender
      ~signature:env.Message.signature;
    (match env.Message.endorsement with
    | Some (who, s) -> add_vote st ~digest:st.digest ~source:who ~signature:s
    | None -> ());
    send_ack t st;
    try_commit t st
  end

(* --------------------------------------------- state transfer (SCR) *)

(* Serve the stable checkpoint image (when the requester is behind it), the
   retained delivered batches, and the committed-but-undelivered tail.  Every
   entry digest is recomputed over exactly the requests served — correct
   processes deliver identical filtered batches, so their recomputed digests
   agree and f+1 matching claims pin each entry down at the requester.  A
   Byzantine responder can serve a corrupt image ([Corrupt_checkpoint_image])
   or a lazily stale checkpoint ([Stale_checkpoint]); the first is rejected
   against the certified digest, the second simply loses to fresher offers. *)
let serve_state_request t ~src ~have =
  let stable =
    match t.fault with
    | Fault.Stale_checkpoint -> Recovery.previous_stable t.rcv
    | _ -> Recovery.latest_stable t.rcv
  in
  let cert, image =
    match stable with
    | Some (c, img) when c.Checkpoint.cp_seq > have -> (Some c, img)
    | Some _ | None -> (None, "")
  in
  let image =
    match t.fault with
    | Fault.Corrupt_checkpoint_image when String.length image > 0 ->
      let b = Bytes.of_string image in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      Bytes.to_string b
    | _ -> image
  in
  let base = match cert with Some c -> max have c.Checkpoint.cp_seq | None -> have in
  let entries =
    match t.fault with
    | Fault.Stale_checkpoint -> []
    | _ ->
      let delivered_entries =
        List.filter_map
          (fun (o, requests) ->
            if o > base then begin
              let batch = Batch.make requests in
              t.ctx.Context.digest_charge (Batch.encoded_size batch);
              Some
                {
                  Checkpoint.e_o = o;
                  e_digest = Batch.digest t.config.Config.digest batch;
                  e_requests = requests;
                }
            end
            else None)
          t.recent_delivered
      in
      let tail =
        Hashtbl.fold
          (fun o st acc ->
            if o <= t.delivered || o <= base || not st.committed then acc
            else begin
              let requests =
                List.filter_map (fun k -> Key_map.find_opt k t.pending) st.keys
              in
              if Int.equal (List.length requests) (List.length st.keys) then begin
                let batch = Batch.make requests in
                t.ctx.Context.digest_charge (Batch.encoded_size batch);
                {
                  Checkpoint.e_o = o;
                  e_digest = Batch.digest t.config.Config.digest batch;
                  e_requests = requests;
                }
                :: acc
              end
              else acc
            end)
          t.orders []
      in
      List.sort
        (fun (a : Checkpoint.entry) b -> Int.compare a.Checkpoint.e_o b.Checkpoint.e_o)
        (delivered_entries @ tail)
  in
  (* A Byzantine responder serving from a tampered local log: the checkpoint
     is genuine but every entry digest is flipped, so no entry matches its
     recomputed batch digest and the requester's entry checks exclude the
     whole suffix. *)
  let entries =
    match t.fault with
    | Fault.Corrupt_wal_suffix ->
      List.map
        (fun (e : Checkpoint.entry) ->
          match e.Checkpoint.e_digest with
          | "" -> e
          | d ->
            let b = Bytes.of_string d in
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
            { e with Checkpoint.e_digest = Bytes.to_string b })
        entries
    | _ -> entries
  in
  send t ~dst:src (make_signed t (Message.State_response { cert; image; entries }))

let entry_ok t (e : Checkpoint.entry) =
  let batch = Batch.make e.Checkpoint.e_requests in
  t.ctx.Context.digest_charge (Batch.encoded_size batch);
  String.equal (Batch.digest t.config.Config.digest batch) e.Checkpoint.e_digest

(* Install the best certified image above our delivery point, then the
   contiguous entry suffix with f+1 matching claims per entry (at least one
   claimant is correct).  Transferred entries enter the log as committed and
   are delivered by the normal in-sequence walk; no Committed event is
   re-emitted for them. *)
let install_from_offers ?(announce = true) t ~entry_quorum =
  let image_installed =
    match Recovery.best_image t.rcv ~above:t.delivered with
    | Some (cert, image, _) -> begin
      match Checkpoint.unwrap_image image with
      | None -> false (* digest-verified yet malformed: refuse quietly *)
      | Some (snap, marks) ->
        t.ctx.Context.restore snap;
        Recovery.merge_marks t.rcv marks;
        t.delivered <- cert.Checkpoint.cp_seq;
        if t.max_committed < cert.Checkpoint.cp_seq then
          t.max_committed <- cert.Checkpoint.cp_seq;
        Recovery.note_image t.rcv ~seq:cert.Checkpoint.cp_seq ~image;
        if Recovery.note_stable t.rcv ~cert ~image then
          t.ctx.Context.emit
            (Context.Checkpoint_stable
               { seq = cert.Checkpoint.cp_seq; digest = cert.Checkpoint.cp_digest });
        truncate t cert.Checkpoint.cp_seq;
        true
    end
    | None -> false
  in
  let installed_at = t.delivered in
  let entries =
    Recovery.select_entries ~quorum:entry_quorum ~base:t.delivered
      ~entry_ok:(entry_ok t) t.rcv
  in
  List.iter
    (fun (e : Checkpoint.entry) ->
      let st = get_order t e.Checkpoint.e_o in
      if not st.committed then begin
        st.have_order <- true;
        st.digest <- e.Checkpoint.e_digest;
        st.keys <- List.map (fun (r : Request.t) -> r.Request.key) e.Checkpoint.e_requests;
        if e.Checkpoint.e_requests = [] then st.null <- true;
        st.committed <- true;
        List.iter
          (fun (r : Request.t) ->
            t.ordered_keys <- Key_set.add r.Request.key t.ordered_keys;
            if
              (not (Key_map.mem r.Request.key t.pending))
              && not (Key_set.mem r.Request.key t.delivered_keys)
            then t.pending <- Key_map.add r.Request.key r t.pending)
          e.Checkpoint.e_requests;
        if st.o > t.max_committed then t.max_committed <- st.o
      end)
    entries;
  if announce && (image_installed || entries <> []) then
    t.ctx.Context.emit
      (Context.State_transfer_installed
         { seq = installed_at; entries = List.length entries });
  advance_delivery t

let attempt_install t = install_from_offers t ~entry_quorum:(t.config.Config.f + 1)

(* Local-first recovery: the locally persisted checkpoint image and WAL
   entry suffix enter as a synthetic self-offer, verified exactly like a
   peer's State_response — pair-endorsed certificate, image bytes against
   the certified digest, each entry against its recomputed batch digest.
   Entry quorum 1: the replica vouches only for its own log, and the
   digest checks exclude any torn or tampered suffix entry-by-entry.
   Returns whether delivery advanced; the caller escalates to peer repair
   when it did not or the log was damaged. *)
let recover_local t ~cert ~image ~entries =
  let before = t.delivered in
  let cert_ok =
    match cert with
    | None -> true
    | Some c ->
      t.ctx.Context.digest_charge (String.length image);
      Recovery.verify_cert
        ~verify:(fun ~signer ~msg ~signature ->
          t.ctx.Context.verify_acc ~signer ~msg ~signature)
        ~scheme:(ckpt_scheme t) c
      && String.equal
           (Checkpoint.image_digest t.config.Config.digest image)
           c.Checkpoint.cp_digest
  in
  if not cert_ok then begin
    t.ctx.Context.emit (Context.State_transfer_rejected { from = id t });
    false
  end
  else begin
    Recovery.clear_offers t.rcv;
    Recovery.add_offer t.rcv
      { Recovery.st_from = id t; st_cert = cert; st_image = image; st_entries = entries };
    (* The synthetic self-offer is a local replay, not a peer transfer:
       the harness announces it as [Wal_replayed], so the install stays
       silent to keep transfer accounting honest. *)
    install_from_offers ~announce:false t ~entry_quorum:1;
    Recovery.clear_offers t.rcv;
    (* A recovered process must never mint at or below what it just
       restored: a fresh order under a committed sequence number could
       strand below the delivery low-water mark or conflict with an
       absorbed entry. *)
    if t.next_seq <= t.max_committed then t.next_seq <- t.max_committed + 1;
    t.delivered > before
  end

let fetch_target t =
  List.fold_left
    (fun acc (off : Recovery.offer) ->
      let acc =
        match off.Recovery.st_cert with
        | Some c -> max acc c.Checkpoint.cp_seq
        | None -> acc
      in
      List.fold_left
        (fun acc (e : Checkpoint.entry) -> max acc e.Checkpoint.e_o)
        acc off.Recovery.st_entries)
    0 (Recovery.offers t.rcv)

(* End the fetch only after offers from f+1 distinct responders (so at
   least one is honest) all fall at or below what we have delivered: a
   single early "nothing above your watermark" reply must not terminate
   the fetch before a helpful offer arrives. *)
let maybe_end_fetch t =
  if
    Recovery.fetching t.rcv
    && List.length (Recovery.offers t.rcv) > t.config.Config.f
    && t.delivered >= fetch_target t
  then begin
    span_close t Context.Recovery_phase (Recovery.fetch_anchor t.rcv);
    Recovery.end_fetch t.rcv;
    (match t.fetch_timer with Some h -> h.Context.cancel () | None -> ());
    t.fetch_timer <- None;
    t.fetch_backoff <- 0;
    Recovery.clear_offers t.rcv
  end

let rec fetch_tick t =
  if Recovery.fetching t.rcv then begin
    Recovery.clear_offers t.rcv;
    multicast t ~dsts:(others t)
      (make_signed t (Message.State_request { have = t.delivered }));
    let base = Simtime.add t.config.Config.heartbeat_interval (pair_estimate t) in
    let delay =
      if adaptive t then begin
        let d = Estimator.backed_off base ~level:t.fetch_backoff ~cap:(timer_cap t) in
        t.fetch_backoff <- t.fetch_backoff + 1;
        d
      end
      else base
    in
    t.fetch_timer <- Some (t.ctx.Context.set_timer ~delay (fun () -> fetch_tick t))
  end

let request_recovery t =
  if not (Recovery.fetching t.rcv) then begin
    Recovery.begin_fetch t.rcv ~have:t.delivered;
    t.ctx.Context.emit (Context.State_transfer_started { have = t.delivered });
    span_open t Context.Recovery_phase t.delivered;
    fetch_tick t
  end

let handle_state_response t ~src ~cert ~image ~entries =
  if Recovery.fetching t.rcv then begin
    let cert_ok =
      match cert with
      | None -> true
      | Some c ->
        t.ctx.Context.digest_charge (String.length image);
        Recovery.verify_cert
          ~verify:(fun ~signer ~msg ~signature ->
            t.ctx.Context.verify_acc ~signer ~msg ~signature)
          ~scheme:(ckpt_scheme t) c
        && String.equal
             (Checkpoint.image_digest t.config.Config.digest image)
             c.Checkpoint.cp_digest
    in
    if not cert_ok then t.ctx.Context.emit (Context.State_transfer_rejected { from = src })
    else begin
      Recovery.add_offer t.rcv
        { Recovery.st_from = src; st_cert = cert; st_image = image; st_entries = entries };
      attempt_install t;
      maybe_end_fetch t
    end
  end

(* ----------------------------------------------------- pair fail-signal *)

let cancel_pair_timers t =
  (match t.watch_timer with Some h -> h.Context.cancel () | None -> ());
  t.watch_timer <- None;
  List.iter (fun (_, h) -> h.Context.cancel ()) t.endorsement_watches;
  t.endorsement_watches <- []

let rec emit_fail_signal t ~value_domain =
  match (t.pair_rank, t.counterpart_fail_signal, t.counterpart) with
  | _ when t.fault = Fault.Withhold_fail_signal ->
    (* Saboteur: sit on the evidence.  Detection must come from the other
       member's signal or from the receivers' own timeouts. *)
    ()
  | Some rank, Some presig, Some cp when t.status = Up && not t.fail_signalled ->
    t.fail_signalled <- true;
    t.status <- (if value_domain then Permanently_down else Down);
    cancel_pair_timers t;
    (match t.batch_timer with Some h -> h.Context.cancel () | None -> ());
    t.batch_timer <- None;
    let body = Message.Fail_signal { pair = rank } in
    let env = { Message.sender = cp; body; signature = presig; endorsement = None } in
    let env = endorse t env in
    t.ctx.Context.emit (Context.Fail_signal_emitted { pair = rank; value_domain });
    if value_domain then t.ctx.Context.emit (Context.Value_fault_detected { pair = rank });
    multicast t ~dsts:(others t) env;
    note_pair_failed t rank
  | _ -> ()

and note_pair_failed t rank =
  t.ctx.Context.emit (Context.Fail_signal_observed { pair = rank });
  if Int.equal rank (coordinator_rank t) && not t.changing_view then begin
    if t.failover_span = None then begin
      t.failover_span <- Some rank;
      span_open t Context.Failover_phase rank
    end;
    propose_view_change t (t.view + 1)
  end

and propose_view_change t v =
  if v > t.view && (not t.changing_view || v > t.target_view) then begin
    (* On escalation (Unwilling, competing proposals) the old target's span
       closes and the new one opens, keeping opens and closes balanced. *)
    (match t.vc_span with
    | Some old -> span_close t Context.View_change_phase old
    | None -> ());
    t.vc_span <- Some v;
    span_open t Context.View_change_phase v;
    t.changing_view <- true;
    t.target_view <- v;
    t.new_view_sent <- false;
    (match t.batch_timer with Some h -> h.Context.cancel () | None -> ());
    t.batch_timer <- None;
    (match t.watch_timer with Some h -> h.Context.cancel () | None -> ());
    t.watch_timer <- None;
    (match t.nv_watch with Some h -> h.Context.cancel () | None -> ());
    t.nv_watch <- None;
    let uncommitted =
      Hashtbl.fold
        (fun o st acc ->
          if st.have_order && (not st.committed) && o > t.max_committed then
            { Message.o; digest = st.digest; keys = st.keys } :: acc
          else acc)
        t.orders []
      |> List.sort (fun a b -> Int.compare a.Message.o b.Message.o)
    in
    let body =
      Message.View_change
        {
          v;
          max_committed = t.max_committed;
          committed_digest = t.committed_digest;
          uncommitted;
        }
    in
    multicast t ~dsts:(others t) (make_signed t body);
    store_view_change t ~src:(id t) ~v
      { vc_max_committed = t.max_committed; vc_uncommitted = uncommitted };
    (* The candidate pair for v declares unwillingness at once. *)
    maybe_unwilling t v
  end

and maybe_unwilling t v =
  match t.pair_rank with
  (* The [Unwilling_spam] saboteur declares unwillingness even while Up,
     pushing every view past its own candidacies. *)
  | Some rank
    when Int.equal rank (candidate_of_view t v)
         && (t.status <> Up || t.fault = Fault.Unwilling_spam) ->
    let body = Message.Unwilling { v; pair = rank } in
    multicast t ~dsts:(others t) (make_signed t body)
  | Some _ | None -> ()

and store_view_change t ~src ~v rec_ =
  let cell =
    match Hashtbl.find_opt t.view_changes v with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.replace t.view_changes v cell;
      cell
  in
  if not (List.mem_assoc src !cell) then begin
    cell := (src, rec_) :: !cell;
    maybe_send_new_view t v;
    arm_nv_watch t v
  end

(* The new coordinator primary computes the new backlog out of n-f
   ViewChange messages and multicasts the shadow-endorsed NewView. *)
and maybe_send_new_view t v =
  let rank = candidate_of_view t v in
  if
    t.changing_view && Int.equal v t.target_view && t.status = Up
    && Int.equal (id t) (Config.primary_of_pair t.config rank)
    && not t.new_view_sent
  then begin
    match Hashtbl.find_opt t.view_changes v with
    | Some cell when List.length !cell >= quorum t ->
      t.new_view_sent <- true;
      let vcs = List.map snd !cell in
      let anchor = List.fold_left (fun acc r -> max acc r.vc_max_committed) 0 vcs in
      let support : (int * string, int * Message.order_info) Hashtbl.t =
        Hashtbl.create 16
      in
      List.iter
        (fun r ->
          List.iter
            (fun (info : Message.order_info) ->
              if info.Message.o > anchor then begin
                let key = (info.Message.o, info.Message.digest) in
                match Hashtbl.find_opt support key with
                | Some (n, i) -> Hashtbl.replace support key (n + 1, i)
                | None -> Hashtbl.replace support key (1, info)
              end)
            r.vc_uncommitted)
        vcs;
      let by_o : (int, (int * Message.order_info) list) Hashtbl.t = Hashtbl.create 16 in
      Hashtbl.iter
        (fun (o, _) (n, info) ->
          let cur = Option.value (Hashtbl.find_opt by_o o) ~default:[] in
          Hashtbl.replace by_o o ((n, info) :: cur))
        support;
      let chosen =
        Hashtbl.fold
          (fun _o cands acc ->
            match
              List.sort
                (fun (n1, i1) (n2, i2) ->
                  let c = Int.compare n2 n1 in
                  if c <> 0 then c else String.compare i1.Message.digest i2.Message.digest)
                cands
            with
            | [] -> acc
            | (_, info) :: _ -> info :: acc)
          by_o []
        |> List.sort (fun a b -> Int.compare a.Message.o b.Message.o)
      in
      let start_o =
        1
        + List.fold_left
            (fun acc (i : Message.order_info) -> max acc i.Message.o)
            anchor chosen
      in
      let nd = null_digest t in
      let filled =
        List.init (start_o - anchor - 1) (fun idx ->
            let o = anchor + 1 + idx in
            match
              List.find_opt (fun (i : Message.order_info) -> Int.equal i.Message.o o) chosen
            with
            | Some info -> info
            | None -> { Message.o; digest = nd; keys = [] })
      in
      let body = Message.New_view { v; start_o; anchor; new_back_log = filled } in
      let env = make_signed t body in
      send t ~dst:(Config.shadow_of_pair t.config rank) env
    | Some _ | None -> ()
  end

(* The shadow of the candidate pair watches its primary during a view
   change: if the primary has a quorum of ViewChanges but produces no
   NewView proposal within the delay estimate, that is a time-domain
   failure. *)
and arm_nv_watch t v =
  let rank = candidate_of_view t v in
  if
    t.changing_view && Int.equal v t.target_view && t.status = Up && t.nv_watch = None
    && Int.equal (id t) (Config.shadow_of_pair t.config rank)
  then begin
    match Hashtbl.find_opt t.view_changes v with
    | Some cell when List.length !cell >= quorum t ->
      let h =
        t.ctx.Context.set_timer ~kind:Context.Watchdog ~delay:(pair_estimate t)
          (fun () ->
            t.nv_watch <- None;
            if t.changing_view && Int.equal v t.target_view && t.status = Up then begin
              emit_fail_signal t ~value_domain:false;
              maybe_unwilling t v
            end)
      in
      t.nv_watch <- Some h
    | Some _ | None -> ()
  end

and handle_new_view_proposal t (env : Message.envelope) ~v ~start_o ~anchor
    ~new_back_log =
  (* Shadow-side plausibility check mirroring SC's Start verification. *)
  let my_vcs =
    match Hashtbl.find_opt t.view_changes v with
    | Some cell -> List.map snd !cell
    | None -> []
  in
  (* A correct primary may know fewer commits than we do (its quorum of
     ViewChanges need not include ours), so the anchor may be below our own
     max_committed.  What it must never do: contradict an order we know
     committed, drop a well-supported order, or overshoot. *)
  let commits_preserved =
    let rec check o =
      o > t.max_committed
      || begin
           (match Hashtbl.find_opt t.orders o with
           | Some st when st.committed ->
             List.exists
               (fun (i : Message.order_info) ->
                 Int.equal i.Message.o o && String.equal i.Message.digest st.digest)
               new_back_log
           | Some _ | None -> true)
           && check (o + 1)
         end
    in
    check (anchor + 1)
  in
  let plausible =
    start_o > anchor && commits_preserved
    && List.for_all
         (fun (info : Message.order_info) ->
           let competing =
             List.filter
               (fun r ->
                 List.exists
                   (fun (i : Message.order_info) ->
                     Int.equal i.Message.o info.Message.o
                     && not (String.equal i.Message.digest info.Message.digest))
                   r.vc_uncommitted)
               my_vcs
           in
           List.length competing < t.config.Config.f + 1)
         new_back_log
  in
  if plausible then begin
    let endorsed = endorse t env in
    multicast t ~dsts:(others t) endorsed;
    install_view t endorsed ~v ~start_o ~anchor ~new_back_log
  end
  else emit_fail_signal t ~value_domain:true

and install_view t (env : Message.envelope) ~v ~start_o ~anchor ~new_back_log =
  if v >= t.target_view || v > t.view then begin
    t.view <- v;
    t.changing_view <- false;
    t.target_view <- v;
    if anchor > t.anchor_seen then t.anchor_seen <- anchor;
    (match t.nv_watch with Some h -> h.Context.cancel () | None -> ());
    t.nv_watch <- None;
    t.start_covers <-
      List.filter (fun (i : Message.order_info) -> i.Message.o > t.max_committed) new_back_log;
    List.iter
      (fun (info : Message.order_info) ->
        (* Below the stable checkpoint the log is truncated and settled; the
           back-log must not resurrect those sequences. *)
        if info.Message.o > Recovery.stable_seq t.rcv then begin
          let st = get_order t info.Message.o in
          if not st.committed then begin
            st.have_order <- true;
            st.digest <- info.Message.digest;
            st.keys <- info.Message.keys;
            st.vote_v <- v;
            if info.Message.keys = [] then st.null <- true;
            List.iter (fun k -> t.ordered_keys <- Key_set.add k t.ordered_keys) info.Message.keys
          end
        end)
      new_back_log;
    let payload = Message.encode_body env.Message.body in
    t.ctx.Context.digest_charge (String.length payload);
    let nv_digest = Sof_crypto.Digest_alg.digest t.config.Config.digest payload in
    let st = get_order t start_o in
    if not st.committed then begin
      st.have_order <- true;
      st.digest <- nv_digest;
      st.keys <- [];
      st.null <- true;
      st.vote_v <- v;
      add_vote st ~digest:nv_digest ~source:env.Message.sender
        ~signature:env.Message.signature;
      (match env.Message.endorsement with
      | Some (who, s) -> add_vote st ~digest:nv_digest ~source:who ~signature:s
      | None -> ())
    end;
    let rank = candidate_of_view t v in
    if Int.equal (id t) (Config.primary_of_pair t.config rank) && t.status = Up then begin
      t.next_seq <- start_o + 1;
      arm_batch_timer t
    end;
    if Int.equal (id t) (Config.shadow_of_pair t.config rank) then begin
      t.expected_seq <- start_o + 1;
      t.last_progress <- t.ctx.Context.now ()
    end;
    t.view_ordered_keys <- Key_set.empty;
    (* Stashed endorsements are from the superseded view; anything still
       legitimate is covered by the install's back-log. *)
    t.stashed_endorsements <- [];
    (match t.vc_span with
    | Some old ->
      t.vc_span <- None;
      span_close t Context.View_change_phase old
    | None -> ());
    (match t.failover_span with
    | Some r ->
      t.failover_span <- None;
      span_close t Context.Failover_phase r
    | None -> ());
    t.ctx.Context.emit (Context.View_installed { v });
    send_ack t st;
    try_commit t st;
    let stash = List.rev t.stash_future in
    t.stash_future <- [];
    List.iter (fun (src, env) -> on_message t ~src env) stash
  end

(* ------------------------------------------------------ normal batching *)

and arm_batch_timer t =
  let h =
    t.ctx.Context.set_timer ~delay:t.config.Config.batching_interval (fun () ->
        batch_tick t)
  in
  t.batch_timer <- Some h

and batch_tick t =
  if i_am_coordinator_primary t then begin
    let pool = Key_map.filter (fun k _ -> not (Key_set.mem k t.ordered_keys)) t.pending in
    if not (Key_map.is_empty pool) then issue_batch t pool;
    arm_batch_timer t
  end

and issue_batch t pool =
  let requests =
    Batch.take_oldest ~limit:t.config.Config.batch_size_limit ~pool ~arrival:t.arrival
  in
  let batch = Batch.make requests in
  let o = t.next_seq in
  t.next_seq <- o + 1;
  t.ctx.Context.digest_charge (Batch.encoded_size batch);
  let digest = Batch.digest t.config.Config.digest batch in
  let digest =
    match t.fault with
    | Fault.Corrupt_digest_at at when Int.equal at o ->
      let b = Bytes.of_string digest in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      Bytes.to_string b
    | _ -> digest
  in
  let keys = Batch.keys batch in
  List.iter (fun k -> t.ordered_keys <- Key_set.add k t.ordered_keys) keys;
  let info = { Message.o; digest; keys } in
  t.ctx.Context.emit
    (Context.Batched
       { seq = o; requests = Batch.request_count batch; bytes = Batch.encoded_size batch });
  open_batch_span t (get_order t o);
  let body = Message.Order { c = t.view; info } in
  let env = make_signed t body in
  match t.fault with
  | Fault.Equivocate_at at when Int.equal at o ->
    (* Equivocation: the shadow sees a conflicting digest (a value-domain
       failure it must fail-signal) while the cohort gets the honest digest
       without the pair's double signature, which receivers reject as
       unendorsed.  No honest receiver assembles a doubly-signed order. *)
    let b = Bytes.of_string digest in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
    let conflicting = { info with Message.digest = Bytes.to_string b } in
    let conflicting_env =
      make_signed t (Message.Order { c = t.view; info = conflicting })
    in
    let shadow = Config.shadow_of_pair t.config (coordinator_rank t) in
    send t ~dst:shadow conflicting_env;
    multicast t ~dsts:(List.filter (fun p -> not (Int.equal p shadow)) (others t)) env
  | _ ->
    open_endorse_span t (get_order t o);
    send t ~dst:(Config.shadow_of_pair t.config (coordinator_rank t)) env;
    arm_endorsement_watch t o ~level:0

and arm_endorsement_watch t o ~level =
  let watch =
    t.ctx.Context.set_timer ~kind:Context.Watchdog ~delay:(budget_at t ~level)
      (fun () -> endorsement_overdue t o ~level)
  in
  t.endorsement_watches <- (o, watch) :: t.endorsement_watches

and endorsement_overdue t o ~level =
  t.endorsement_watches <- List.remove_assoc o t.endorsement_watches;
  let endorsed =
    match Hashtbl.find_opt t.orders o with Some st -> st.have_order | None -> false
  in
  if not endorsed then
    if can_back_off t ~level then arm_endorsement_watch t o ~level:(level + 1)
    else emit_fail_signal t ~value_domain:false

(* ----------------------------------------- shadow checks and endorsement *)

and shadow_validate_order t ~(info : Message.order_info) =
  if not (Int.equal info.Message.o t.expected_seq) then
    if info.Message.o < t.expected_seq then `Duplicate
    else
      (* A gap is not evidence: the network is non-FIFO, so a later order can
         overtake an earlier one we are still deferring on.  Stash it until
         the gap fills. *)
      `Defer
  else if
    (* Double-ordering is only evidence of misbehaviour within the current
       view: a primary installed after a view change may not know which keys
       earlier views already ordered, and re-proposing them is benign now
       that delivery is at-most-once. *)
    List.exists (fun k -> Key_set.mem k t.view_ordered_keys) info.Message.keys
  then `Invalid
  else if info.Message.keys = [] then `Invalid
  else begin
    let lookup k =
      match Key_map.find_opt k t.pending with
      | Some r -> Some r
      | None -> Key_map.find_opt k t.executed
    in
    let requests = List.filter_map lookup info.Message.keys in
    if not (Int.equal (List.length requests) (List.length info.Message.keys)) then `Defer
    else begin
      let batch = Batch.make requests in
      t.ctx.Context.digest_charge (Batch.encoded_size batch);
      if String.equal (Batch.digest t.config.Config.digest batch) info.Message.digest then `Valid
      else `Invalid
    end
  end

and shadow_handle_order t (env : Message.envelope) ~(info : Message.order_info) =
  match t.fault with
  | Fault.Drop_endorsements -> ()
  | _ -> begin
    match shadow_validate_order t ~info with
    | `Duplicate -> ()
    | `Defer ->
      let st = get_order t info.Message.o in
      open_batch_span t st;
      open_endorse_span t st;
      t.stashed_endorsements <- (t.ctx.Context.now (), env, info) :: t.stashed_endorsements;
      retry_stashed_later t
    | `Invalid -> begin
      match t.fault with
      | Fault.Endorse_corrupt_at at when Int.equal at info.Message.o -> shadow_endorse t env ~info
      | _ -> emit_fail_signal t ~value_domain:true
    end
    | `Valid ->
      let st = get_order t info.Message.o in
      open_batch_span t st;
      open_endorse_span t st;
      shadow_endorse t env ~info
  end

and retry_stashed_later t =
  if not t.stash_retry_armed then begin
    t.stash_retry_armed <- true;
    ignore
      (t.ctx.Context.set_timer ~kind:Context.Watchdog ~delay:(pair_estimate t)
         (fun () ->
           t.stash_retry_armed <- false;
           retry_stashed t))
  end

and shadow_endorse t (env : Message.envelope) ~(info : Message.order_info) =
  t.expected_seq <- info.Message.o + 1;
  t.last_progress <- t.ctx.Context.now ();
  t.shadow_watch_level <- 0;
  List.iter
    (fun k ->
      t.ordered_keys <- Key_set.add k t.ordered_keys;
      t.view_ordered_keys <- Key_set.add k t.view_ordered_keys)
    info.Message.keys;
  let endorsed = endorse t env in
  multicast t ~dsts:(others t) endorsed;
  accept_order t endorsed ~v:t.view ~info;
  rearm_shadow_watch t

and retry_stashed t =
  let stashed = t.stashed_endorsements in
  t.stashed_endorsements <- [];
  (* Ascending sequence order so that endorsing a gap-filler immediately
     unblocks the overtaking orders stashed behind it. *)
  let stashed =
    List.sort
      (fun (_, _, (a : Message.order_info)) (_, _, (b : Message.order_info)) ->
        Int.compare a.Message.o b.Message.o)
      stashed
  in
  List.iter
    (fun (since, env, (info : Message.order_info)) ->
      match shadow_validate_order t ~info with
      | `Valid -> shadow_endorse t env ~info
      | `Duplicate -> ()
      | `Invalid -> emit_fail_signal t ~value_domain:true
      | `Defer ->
        let age = Simtime.diff (t.ctx.Context.now ()) since in
        (* In adaptive mode the wire may legitimately hold a gap open for as
           long as the hard cap — only a gap older than that is evidence. *)
        let limit = if adaptive t then timer_cap t else pair_estimate t in
        if Simtime.compare age limit >= 0 then
          (* Timeout, not proof: the referenced requests (or the gap
             predecessor) never showed up.  Time-domain. *)
          emit_fail_signal t ~value_domain:false
        else begin
          t.stashed_endorsements <- (since, env, info) :: t.stashed_endorsements;
          if adaptive t then retry_stashed_later t
        end)
    stashed

and rearm_shadow_watch t =
  (match t.watch_timer with Some h -> h.Context.cancel () | None -> ());
  t.watch_timer <- None;
  if i_am_coordinator_shadow t then begin
    let unordered =
      Key_map.filter (fun k _ -> not (Key_set.mem k t.ordered_keys)) t.arrival
    in
    match Key_map.min_binding_opt unordered with
    | None -> ()
    | Some (_, oldest) ->
      let budget =
        Simtime.add t.config.Config.batching_interval
          (budget_at t ~level:t.shadow_watch_level)
      in
      (* Progress-based, as in SC: a backlogged-but-ordering primary is
         timely. *)
      let deadline = Simtime.add (Simtime.max oldest t.last_progress) budget in
      let now = t.ctx.Context.now () in
      let delay =
        if Simtime.compare deadline now <= 0 then Simtime.ns 1
        else Simtime.diff deadline now
      in
      t.watch_timer <-
        Some
          (t.ctx.Context.set_timer ~kind:Context.Watchdog ~delay (fun () ->
               shadow_watch_fired t))
  end

and shadow_watch_fired t =
  t.watch_timer <- None;
  if i_am_coordinator_shadow t then begin
    let budget =
      Simtime.add t.config.Config.batching_interval
        (budget_at t ~level:t.shadow_watch_level)
    in
    let now = t.ctx.Context.now () in
    let stalled =
      Simtime.compare (Simtime.add t.last_progress budget) now <= 0
      && Key_map.exists
           (fun k since ->
             (not (Key_set.mem k t.ordered_keys))
             && Simtime.compare (Simtime.add since budget) now <= 0)
           t.arrival
    in
    if not stalled then rearm_shadow_watch t
    else if can_back_off t ~level:t.shadow_watch_level then begin
      t.shadow_watch_level <- t.shadow_watch_level + 1;
      rearm_shadow_watch t
    end
    else emit_fail_signal t ~value_domain:false
  end

(* --------------------------------------------------- heartbeat/recovery *)

and arm_heartbeat t =
  match (t.pair_rank, t.counterpart) with
  | Some rank, Some cp ->
    let h =
      t.ctx.Context.set_timer ~kind:Context.Watchdog
        ~delay:t.config.Config.heartbeat_interval (fun () -> heartbeat_tick t rank cp)
    in
    t.heartbeat_timer <- Some h
  | _ -> ()

and heartbeat_tick t rank cp =
  if t.status <> Permanently_down then begin
    t.beat <- t.beat + 1;
    send t ~dst:cp (make_signed t (Message.Heartbeat { pair = rank; beat = t.beat }));
    if adaptive t then send_probe t cp;
    let silence = Simtime.diff (t.ctx.Context.now ()) t.last_heard in
    let tolerance =
      Simtime.add
        (Simtime.add t.config.Config.heartbeat_interval t.config.Config.heartbeat_interval)
        (budget_at t ~level:t.hb_level)
    in
    match t.status with
    | Up ->
      if Simtime.compare silence tolerance <= 0 then t.hb_level <- 0
      else if can_back_off t ~level:t.hb_level then t.hb_level <- t.hb_level + 1
      else emit_fail_signal t ~value_domain:false
    | Down ->
      (* Continued mutual checking: hearing from the counterpart again in a
         timely way means the bad period has passed (assumption 3(b)(i)) —
         resume working as a pair. *)
      if Simtime.compare silence tolerance <= 0 then begin
        t.status <- Up;
        t.fail_signalled <- false;
        t.hb_level <- 0;
        t.ctx.Context.emit
          (Context.Pair_recovered { pair = Option.value t.pair_rank ~default:0 })
      end
    | Permanently_down -> ()
  end;
  if t.status <> Permanently_down then arm_heartbeat t

(* -------------------------------------------------------------- inbound *)

and on_message t ~src (env : Message.envelope) =
  (match t.counterpart with
  | Some cp when Int.equal cp src -> t.last_heard <- t.ctx.Context.now ()
  | Some _ | None -> ());
  match env.Message.body with
  | Message.Heartbeat _ -> ()
  | Message.Fail_signal { pair } ->
    let key = (pair, env.Message.sender, t.view) in
    if
      pair >= 1
      && pair <= Config.pair_count t.config
      && (not (Hashtbl.mem t.echoed_fail_signals key))
      && fail_signal_authentic t ~pair env
    then begin
      Hashtbl.replace t.echoed_fail_signals key ();
      (* Echo once to the first signatory (not to ourselves). *)
      if not (Int.equal env.Message.sender (id t)) then send t ~dst:env.Message.sender env;
      (* A member that has not signalled joins its counterpart's signal. *)
      (match t.pair_rank with
      | Some r when Int.equal r pair && t.status = Up -> emit_fail_signal t ~value_domain:false
      | Some _ | None -> ());
      note_pair_failed t pair
    end
  | Message.Order { c = v; info } ->
    (* Sequence numbers at or below the stable checkpoint are settled and
       truncated — stragglers must not resurrect them in the log. *)
    if info.Message.o <= Recovery.stable_seq t.rcv then ()
    else if Int.equal v t.view && not t.changing_view then begin
      let rank = coordinator_rank t in
      if env.Message.endorsement = None then begin
        if
          i_am_coordinator_shadow t
          && Int.equal src (Config.primary_of_pair t.config rank)
          && Int.equal env.Message.sender src
          && authentic t env
        then shadow_handle_order t env ~info
      end
      else if doubly_signed_by_pair t ~rank env && authentic t env then begin
        if i_am_coordinator_primary t && Int.equal env.Message.sender (id t) && not (Int.equal src (id t)) then begin
          (match List.assoc_opt info.Message.o t.endorsement_watches with
          | Some h ->
            h.Context.cancel ();
            t.endorsement_watches <- List.remove_assoc info.Message.o t.endorsement_watches
          | None -> ());
          multicast t ~dsts:(others t) env
        end;
        accept_order t env ~v ~info
      end
    end
    else if v > t.view || t.changing_view then
      t.stash_future <- (src, env) :: t.stash_future
    else if
      (* Catch-up: a late order from a superseded view.  Sequences at or
         below an installed NewView's anchor are proven committed, and under
         the pair fault model the valid coordinator message for a given
         sequence is unique, so adopting its content is safe — this is how a
         replica partitioned across the view change recovers the orders whose
         acks it already holds.  Fresh sequences from a deposed view (above
         the anchor, where the view change may have decided differently) stay
         dropped. *)
      info.Message.o <= t.anchor_seen
      && doubly_signed_by_pair t ~rank:(candidate_of_view t v) env
      && authentic t env
    then accept_order t env ~v ~info
  | Message.Ack { o; digest; _ } ->
    if o > Recovery.stable_seq t.rcv && authentic t env then begin
      let st = get_order t o in
      add_vote st ~digest ~source:env.Message.sender ~signature:env.Message.signature;
      if st.have_order && String.equal st.digest digest then try_commit t st
    end
  | Message.View_change { v; max_committed; uncommitted; _ } ->
    if v > t.view && authentic t env then begin
      store_view_change t ~src:env.Message.sender ~v
        { vc_max_committed = max_committed; vc_uncommitted = uncommitted };
      (* Seeing f+1 view changes means at least one correct process saw the
         coordinator's fail-signal: join. *)
      (match Hashtbl.find_opt t.view_changes v with
      | Some cell ->
        if List.length !cell > t.config.Config.f && (v > t.target_view || not t.changing_view)
        then propose_view_change t v
      | None -> ())
    end
  | Message.New_view { v; start_o; anchor; new_back_log } ->
    if (v > t.view || (t.changing_view && Int.equal v t.target_view)) && authentic t env then begin
      let rank = candidate_of_view t v in
      if env.Message.endorsement = None then begin
        if
          Int.equal (id t) (Config.shadow_of_pair t.config rank)
          && Int.equal env.Message.sender (Config.primary_of_pair t.config rank)
          && t.status = Up
        then handle_new_view_proposal t env ~v ~start_o ~anchor ~new_back_log
      end
      else if doubly_signed_by_pair t ~rank env then begin
        if Int.equal (id t) (Config.primary_of_pair t.config rank) && Int.equal env.Message.sender (id t) && not (Int.equal src (id t))
        then multicast t ~dsts:(others t) env;
        install_view t env ~v ~start_o ~anchor ~new_back_log
      end
    end
  | Message.Unwilling { v; pair } ->
    if
      (v > t.view || (t.changing_view && v >= t.target_view))
      && Int.equal pair (candidate_of_view t v)
      && List.mem env.Message.sender (Config.candidate_members t.config pair)
      && authentic t env
    then begin
      (* Echo back to both members, then move on to the next view. *)
      List.iter
        (fun m -> if not (Int.equal m (id t)) then send t ~dst:m env)
        (Config.candidate_members t.config pair);
      propose_view_change t (v + 1)
    end
  | Message.Checkpoint { seq; digest } ->
    if
      t.config.Config.checkpoint_interval > 0
      && seq > Recovery.stable_seq t.rcv
      && authentic t env
    then begin
      (match env.Message.endorsement with
      | None -> begin
        (* Phase-1 proposal addressed to this pair's shadow. *)
        match (t.pair_rank, t.counterpart) with
        | Some r, Some cp
          when Int.equal env.Message.sender cp
               && Int.equal cp (Config.primary_of_pair t.config r)
               && t.status = Up ->
          shadow_handle_checkpoint t env ~seq ~digest
        | _ -> ()
      end
      | Some (who, _) ->
        if ckpt_pair_ok t ~primary:env.Message.sender ~endorser:(Some who) then
          ckpt_adopt_cert t (cert_of_ckpt_env env ~seq ~digest));
      (* A checkpoint a full interval ahead of our delivery point means we
         missed traffic that has since been truncated at our peers: catch up
         through state transfer rather than waiting for retransmissions that
         will never come. *)
      if seq > t.delivered + t.config.Config.checkpoint_interval then request_recovery t
    end
  | Message.State_request { have } -> if authentic t env then serve_state_request t ~src ~have
  | Message.State_response { cert; image; entries } ->
    if authentic t env then handle_state_response t ~src ~cert ~image ~entries
  | Message.Probe { nonce; at } ->
    (* Echo the sender's timestamp back; replies are liveness-only input so
       they need no verification beyond the estimator's nonce filter. *)
    if adaptive t then send t ~dst:src (make_signed t (Message.Probe_reply { nonce; at }))
  | Message.Probe_reply { nonce; at } -> note_probe_reply t ~src ~nonce ~at
  | Message.Back_log _ | Message.Start _ | Message.Start_ack _
  | Message.Start_tuples _ | Message.Pre_prepare _ | Message.Prepare _
  | Message.Commit _ | Message.Bft_view_change _ | Message.Bft_new_view _ ->
    ()

and fail_signal_authentic t ~pair (env : Message.envelope) =
  let members = Config.candidate_members t.config pair in
  List.length members = 2
  && List.mem env.Message.sender members
  && begin
       match env.Message.endorsement with
       | Some (who, _) -> List.mem who members && not (Int.equal who env.Message.sender)
       | None -> false
     end
  && authentic t env

(* ------------------------------------------------------------- requests *)

let on_request t (req : Request.t) =
  let key = req.Request.key in
  if (not (Key_set.mem key t.ordered_keys)) && not (Key_map.mem key t.pending) then begin
    t.pending <- Key_map.add key req t.pending;
    t.arrival <- Key_map.add key (t.ctx.Context.now ()) t.arrival;
    if t.stashed_endorsements <> [] then retry_stashed t;
    if i_am_coordinator_shadow t && t.watch_timer = None then rearm_shadow_watch t;
    advance_delivery t
  end
  else if not (Key_map.mem key t.pending) then begin
    t.pending <- Key_map.add key req t.pending;
    advance_delivery t
  end

let start t =
  if Option.is_some t.pair_rank then arm_heartbeat t;
  if i_am_coordinator_primary t then arm_batch_timer t;
  match t.fault with
  | Fault.Spurious_fail_signal_at at when Option.is_some t.pair_rank ->
    (* Fail-signal abuse: accuse the innocent counterpart at the given
       instant (processes start at simulated time zero, so the instant and
       the timer delay coincide). *)
    ignore
      (t.ctx.Context.set_timer ~delay:at (fun () ->
           emit_fail_signal t ~value_domain:false))
  | _ -> ()

let create ~ctx ~config ?(fault = Fault.Honest) ?counterpart_fail_signal () =
  if config.Config.variant <> Config.SCR then
    raise (Config.Invalid_config "Scr.create: config must use the SCR variant");
  let pid = ctx.Context.id in
  let pair_rank = Config.pair_rank_of config pid in
  (match (pair_rank, counterpart_fail_signal) with
  | Some _, None -> raise (Config.Invalid_config "Scr.create: paired process needs counterpart_fail_signal")
  | None, Some _ -> raise (Config.Invalid_config "Scr.create: unpaired process cannot hold a fail-signal")
  | _ -> ());
  {
    ctx;
    config;
    fault;
    counterpart_fail_signal;
    pair_rank;
    counterpart = Config.counterpart config pid;
    all_ids = Config.all_processes config;
    view = 1;
    changing_view = false;
    target_view = 1;
    status = Up;
    fail_signalled = false;
    last_heard = Simtime.zero;
    heartbeat_timer = None;
    beat = 0;
    pending = Key_map.empty;
    arrival = Key_map.empty;
    ordered_keys = Key_set.empty;
    delivered_keys = Key_set.empty;
    view_ordered_keys = Key_set.empty;
    executed = Key_map.empty;
    orders = Hashtbl.create 64;
    max_committed = 0;
    committed_digest = "";
    delivered = 0;
    next_seq = 1;
    batch_timer = None;
    endorsement_watches = [];
    expected_seq = 1;
    last_progress = Simtime.zero;
    stashed_endorsements = [];
    watch_timer = None;
    view_changes = Hashtbl.create 4;
    new_view_sent = false;
    nv_watch = None;
    start_covers = [];
    anchor_seen = 0;
    stash_future = [];
    echoed_fail_signals = Hashtbl.create 8;
    failover_span = None;
    vc_span = None;
    rcv = Recovery.create ();
    recent_delivered = [];
    ckpt_proposals = [];
    ckpt_certs = [];
    fetch_timer = None;
    ests = Array.make (Config.process_count config) None;
    probe_accepted = Array.make (Config.process_count config) 0;
    probe_nonce = 0;
    fetch_backoff = 0;
    shadow_watch_level = 0;
    hb_level = 0;
    stash_retry_armed = false;
  }
