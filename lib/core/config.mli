(** Protocol deployment configuration and process layout.

    Process identifiers are dense integers shared with the network layer.
    For a configuration with [2f+1] replica nodes and [k] pairs (k = f for
    SC, f+1 for SCR):

    - ids [0 .. 2f]  are the replica order processes p1 .. p(2f+1);
    - ids [2f+1 .. 2f+k] are the shadows p'1 .. p'k.

    Pair (coordinator-candidate) ranks are 1-based, matching the paper: pair
    [r] is [{p_r, p'_r}].  In SC the (f+1)-th coordinator candidate is the
    unpaired process p(f+1). *)

exception Invalid_config of string
(** Constructor-time validation failure.  Raised by [make] and the rank
    accessors on out-of-range arguments, and by the protocol [create]
    functions on inconsistent set-ups; caught at the harness/runtime
    boundary. *)

type variant =
  | SC
      (** Signal-on-crash set-up: assumptions 3(a) — synchronous pair links
          with accurate delay estimates, sequential failure pattern.
          n = 3f+1. *)
  | SCR
      (** Signal-on-crash-and-recovery set-up: assumptions 3(b) — eventually
          accurate estimates, at most one fault per pair.  n = 3f+2. *)

(** How the timeliness timers obtain their delay estimate.

    [Static] is the paper's Sync reading of assumption 3(a): the
    configured [pair_delay_estimate] is trusted as a bound and never
    revised — the behaviour of every release before adaptive timing, so
    seeded runs replay byte-for-byte.  [Adaptive] makes the PSync reading
    of assumption 3(b) operational: processes exchange timestamped probes,
    feed per-link Jacobson estimators, and derive their timeliness
    deadlines from the measured round-trip distribution with exponential
    backoff and a hard cap.  Adaptive timing can only delay or avoid a
    fail-signal, never forge protocol evidence, so it affects liveness
    only — safety never depends on a timer (DESIGN.md section 14). *)
type timing = Static | Adaptive

val timing_name : timing -> string
(** ["static"] or ["adaptive"]. *)

type t = {
  f : int;  (** Fault-tolerance parameter, f >= 1. *)
  variant : variant;
  batching_interval : Sof_sim.Simtime.t;
      (** The coordinator forms at most one batch per interval (paper
          Section 4.3, second optimisation). *)
  batch_size_limit : int;  (** Max encoded request bytes per batch (1 KB). *)
  digest : Sof_crypto.Digest_alg.t;  (** For request/batch digests. *)
  pair_delay_estimate : Sof_sim.Simtime.t;
      (** The differential delay bound used for timeliness checking inside a
          pair (Section 2.1.1). *)
  heartbeat_interval : Sof_sim.Simtime.t;
      (** Mutual-checking cadence inside a pair when there is no protocol
          traffic to check. *)
  dumb_optimization : bool;
      (** The first optimisation of Section 4.3: installed-away pairs turn
          dumb, n shrinks by 2 and f by 1.  On by default; off for ablation
          runs. *)
  checkpoint_interval : int;
      (** Every this-many delivered sequence numbers, snapshot and certify a
          checkpoint, truncating the order log behind the latest stable one.
          0 (the default) disables checkpointing entirely — the log grows
          without bound, exactly the pre-checkpoint behaviour. *)
  timing : timing;
      (** [Static] (the default) keeps every timeliness deadline at the
          configured estimate; [Adaptive] turns on probing and estimator-
          driven deadlines. *)
}

val make :
  ?variant:variant ->
  ?batching_interval:Sof_sim.Simtime.t ->
  ?batch_size_limit:int ->
  ?digest:Sof_crypto.Digest_alg.t ->
  ?pair_delay_estimate:Sof_sim.Simtime.t ->
  ?heartbeat_interval:Sof_sim.Simtime.t ->
  ?dumb_optimization:bool ->
  ?checkpoint_interval:int ->
  ?timing:timing ->
  f:int ->
  unit ->
  t
(** Defaults: SC, 100 ms interval, 1024-byte batches, MD5 digests, 10 ms
    delay estimate, 20 ms heartbeat, checkpointing off, static timing.
    @raise Invalid_config when [f < 1], [checkpoint_interval < 0], or any
    of [batching_interval], [pair_delay_estimate], [heartbeat_interval] is
    non-positive. *)

val replica_count : t -> int
(** [2f+1]. *)

val pair_count : t -> int
(** [f] for SC, [f+1] for SCR. *)

val process_count : t -> int
(** [3f+1] for SC, [3f+2] for SCR. *)

val candidate_count : t -> int
(** Coordinator candidates: [f+1] in both variants. *)

val primary_of_pair : t -> int -> int
(** Process id of [p_r] for pair rank [r] (1-based).
    @raise Invalid_config on out-of-range ranks. *)

val shadow_of_pair : t -> int -> int
(** Process id of [p'_r]. *)

val pair_rank_of : t -> int -> int option
(** [Some r] when the process belongs to pair [r]. *)

val counterpart : t -> int -> int option
(** The other member of the process's pair, if paired. *)

val is_shadow : t -> int -> bool

val candidate_members : t -> int -> int list
(** Process ids making up coordinator candidate rank [r]: two for a pair,
    one for SC's final unpaired candidate. *)

val candidate_is_pair : t -> int -> bool

val all_processes : t -> int list
val pp : Format.formatter -> t -> unit
