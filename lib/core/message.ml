module Codec = Sof_util.Codec
module Request = Sof_smr.Request

type order_info = { o : int; digest : string; keys : Request.key list }

type body =
  | Order of { c : int; info : order_info }
  | Ack of { c : int; o : int; digest : string }
  | Fail_signal of { pair : int }
  | Back_log of {
      c : int;
      failed_pair : int;
      max_committed : int;
      committed_digest : string;
      proof_c : int;
      proof : (int * string) list;
      stable : Checkpoint.cert option;
          (* the sender's stable checkpoint certificate: durable proof of
             commitment through its sequence number, for a replica whose
             volatile ack proof did not survive a crash-restart *)
      uncommitted : order_info list;
    }
  | Start of { c : int; start_o : int; anchor : int; new_back_log : order_info list }
  | Start_ack of { c : int; start_digest : string }
  | Start_tuples of { c : int; tuples : (int * string) list }
  | View_change of {
      v : int;
      max_committed : int;
      committed_digest : string;
      uncommitted : order_info list;
    }
  | New_view of { v : int; start_o : int; anchor : int; new_back_log : order_info list }
  | Unwilling of { v : int; pair : int }
  | Heartbeat of { pair : int; beat : int }
  | Pre_prepare of { v : int; info : order_info }
  | Prepare of { v : int; o : int; digest : string }
  | Commit of { v : int; o : int; digest : string }
  | Bft_view_change of { v : int; prepared : order_info list }
  | Bft_new_view of { v : int; pre_prepares : order_info list }
  | Checkpoint of { seq : int; digest : string }
  | State_request of { have : int }
  | State_response of {
      cert : Checkpoint.cert option;
      image : string;
      entries : Checkpoint.entry list;
    }
  | Probe of { nonce : int; at : int }
  | Probe_reply of { nonce : int; at : int }

type envelope = {
  sender : int;
  body : body;
  signature : string;
  endorsement : (int * string) option;
}

(* ---------------------------------------------------------------- codec *)

let write_key w (k : Request.key) =
  Codec.Writer.varint w k.Request.client;
  Codec.Writer.varint w k.Request.client_seq

let read_key r =
  let client = Codec.Reader.varint r in
  let client_seq = Codec.Reader.varint r in
  { Request.client; client_seq }

let write_order_info w info =
  Codec.Writer.varint w info.o;
  Codec.Writer.string w info.digest;
  Codec.Writer.list w write_key info.keys

let read_order_info r =
  let o = Codec.Reader.varint r in
  let digest = Codec.Reader.string r in
  let keys = Codec.Reader.list r read_key in
  { o; digest; keys }

let write_tuple w (signer, signature) =
  Codec.Writer.varint w signer;
  Codec.Writer.string w signature

let read_tuple r =
  let signer = Codec.Reader.varint r in
  let signature = Codec.Reader.string r in
  (signer, signature)

let encode_body body =
  let w = Codec.Writer.create () in
  (match body with
  | Order { c; info } ->
    Codec.Writer.u8 w 0;
    Codec.Writer.varint w c;
    write_order_info w info
  | Ack { c; o; digest } ->
    Codec.Writer.u8 w 1;
    Codec.Writer.varint w c;
    Codec.Writer.varint w o;
    Codec.Writer.string w digest
  | Fail_signal { pair } ->
    Codec.Writer.u8 w 2;
    Codec.Writer.varint w pair
  | Back_log
      { c; failed_pair; max_committed; committed_digest; proof_c; proof; stable; uncommitted }
    ->
    Codec.Writer.u8 w 3;
    Codec.Writer.varint w c;
    Codec.Writer.varint w failed_pair;
    Codec.Writer.varint w max_committed;
    Codec.Writer.string w committed_digest;
    Codec.Writer.varint w proof_c;
    Codec.Writer.list w write_tuple proof;
    Codec.Writer.option w Checkpoint.write_cert stable;
    Codec.Writer.list w write_order_info uncommitted
  | Start { c; start_o; anchor; new_back_log } ->
    Codec.Writer.u8 w 4;
    Codec.Writer.varint w c;
    Codec.Writer.varint w start_o;
    Codec.Writer.varint w anchor;
    Codec.Writer.list w write_order_info new_back_log
  | Start_ack { c; start_digest } ->
    Codec.Writer.u8 w 5;
    Codec.Writer.varint w c;
    Codec.Writer.string w start_digest
  | Start_tuples { c; tuples } ->
    Codec.Writer.u8 w 6;
    Codec.Writer.varint w c;
    Codec.Writer.list w write_tuple tuples
  | View_change { v; max_committed; committed_digest; uncommitted } ->
    Codec.Writer.u8 w 7;
    Codec.Writer.varint w v;
    Codec.Writer.varint w max_committed;
    Codec.Writer.string w committed_digest;
    Codec.Writer.list w write_order_info uncommitted
  | New_view { v; start_o; anchor; new_back_log } ->
    Codec.Writer.u8 w 8;
    Codec.Writer.varint w v;
    Codec.Writer.varint w start_o;
    Codec.Writer.varint w anchor;
    Codec.Writer.list w write_order_info new_back_log
  | Unwilling { v; pair } ->
    Codec.Writer.u8 w 9;
    Codec.Writer.varint w v;
    Codec.Writer.varint w pair
  | Heartbeat { pair; beat } ->
    Codec.Writer.u8 w 10;
    Codec.Writer.varint w pair;
    Codec.Writer.varint w beat
  | Pre_prepare { v; info } ->
    Codec.Writer.u8 w 11;
    Codec.Writer.varint w v;
    write_order_info w info
  | Prepare { v; o; digest } ->
    Codec.Writer.u8 w 12;
    Codec.Writer.varint w v;
    Codec.Writer.varint w o;
    Codec.Writer.string w digest
  | Commit { v; o; digest } ->
    Codec.Writer.u8 w 13;
    Codec.Writer.varint w v;
    Codec.Writer.varint w o;
    Codec.Writer.string w digest
  | Bft_view_change { v; prepared } ->
    Codec.Writer.u8 w 14;
    Codec.Writer.varint w v;
    Codec.Writer.list w write_order_info prepared
  | Bft_new_view { v; pre_prepares } ->
    Codec.Writer.u8 w 15;
    Codec.Writer.varint w v;
    Codec.Writer.list w write_order_info pre_prepares
  | Checkpoint { seq; digest } ->
    Codec.Writer.u8 w 16;
    Codec.Writer.varint w seq;
    Codec.Writer.string w digest
  | State_request { have } ->
    Codec.Writer.u8 w 17;
    Codec.Writer.varint w have
  | State_response { cert; image; entries } ->
    Codec.Writer.u8 w 18;
    Codec.Writer.option w Checkpoint.write_cert cert;
    Codec.Writer.string w image;
    Codec.Writer.list w Checkpoint.write_entry entries
  | Probe { nonce; at } ->
    Codec.Writer.u8 w 19;
    Codec.Writer.varint w nonce;
    Codec.Writer.varint w at
  | Probe_reply { nonce; at } ->
    Codec.Writer.u8 w 20;
    Codec.Writer.varint w nonce;
    Codec.Writer.varint w at);
  Codec.Writer.contents w

let decode_body s =
  let r = Codec.Reader.of_string s in
  let body =
    match Codec.Reader.u8 r with
    | 0 ->
      let c = Codec.Reader.varint r in
      Order { c; info = read_order_info r }
    | 1 ->
      let c = Codec.Reader.varint r in
      let o = Codec.Reader.varint r in
      Ack { c; o; digest = Codec.Reader.string r }
    | 2 -> Fail_signal { pair = Codec.Reader.varint r }
    | 3 ->
      let c = Codec.Reader.varint r in
      let failed_pair = Codec.Reader.varint r in
      let max_committed = Codec.Reader.varint r in
      let committed_digest = Codec.Reader.string r in
      let proof_c = Codec.Reader.varint r in
      let proof = Codec.Reader.list r read_tuple in
      let stable = Codec.Reader.option r Checkpoint.read_cert in
      let uncommitted = Codec.Reader.list r read_order_info in
      Back_log
        { c; failed_pair; max_committed; committed_digest; proof_c; proof; stable; uncommitted }
    | 4 ->
      let c = Codec.Reader.varint r in
      let start_o = Codec.Reader.varint r in
      let anchor = Codec.Reader.varint r in
      Start { c; start_o; anchor; new_back_log = Codec.Reader.list r read_order_info }
    | 5 ->
      let c = Codec.Reader.varint r in
      Start_ack { c; start_digest = Codec.Reader.string r }
    | 6 ->
      let c = Codec.Reader.varint r in
      Start_tuples { c; tuples = Codec.Reader.list r read_tuple }
    | 7 ->
      let v = Codec.Reader.varint r in
      let max_committed = Codec.Reader.varint r in
      let committed_digest = Codec.Reader.string r in
      View_change
        { v; max_committed; committed_digest; uncommitted = Codec.Reader.list r read_order_info }
    | 8 ->
      let v = Codec.Reader.varint r in
      let start_o = Codec.Reader.varint r in
      let anchor = Codec.Reader.varint r in
      New_view { v; start_o; anchor; new_back_log = Codec.Reader.list r read_order_info }
    | 9 ->
      let v = Codec.Reader.varint r in
      Unwilling { v; pair = Codec.Reader.varint r }
    | 10 ->
      let pair = Codec.Reader.varint r in
      Heartbeat { pair; beat = Codec.Reader.varint r }
    | 11 ->
      let v = Codec.Reader.varint r in
      Pre_prepare { v; info = read_order_info r }
    | 12 ->
      let v = Codec.Reader.varint r in
      let o = Codec.Reader.varint r in
      Prepare { v; o; digest = Codec.Reader.string r }
    | 13 ->
      let v = Codec.Reader.varint r in
      let o = Codec.Reader.varint r in
      Commit { v; o; digest = Codec.Reader.string r }
    | 14 ->
      let v = Codec.Reader.varint r in
      Bft_view_change { v; prepared = Codec.Reader.list r read_order_info }
    | 15 ->
      let v = Codec.Reader.varint r in
      Bft_new_view { v; pre_prepares = Codec.Reader.list r read_order_info }
    | 16 ->
      let seq = Codec.Reader.varint r in
      Checkpoint { seq; digest = Codec.Reader.string r }
    | 17 -> State_request { have = Codec.Reader.varint r }
    | 18 ->
      let cert = Codec.Reader.option r Checkpoint.read_cert in
      let image = Codec.Reader.string r in
      let entries = Codec.Reader.list r Checkpoint.read_entry in
      State_response { cert; image; entries }
    | 19 ->
      let nonce = Codec.Reader.varint r in
      Probe { nonce; at = Codec.Reader.varint r }
    | 20 ->
      let nonce = Codec.Reader.varint r in
      Probe_reply { nonce; at = Codec.Reader.varint r }
    | _ -> raise Codec.Reader.Truncated
  in
  Codec.Reader.expect_end r;
  body

let encode env =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w env.sender;
  Codec.Writer.string w (encode_body env.body);
  Codec.Writer.string w env.signature;
  Codec.Writer.option w write_tuple env.endorsement;
  Codec.Writer.contents w

let decode s =
  let r = Codec.Reader.of_string s in
  let sender = Codec.Reader.varint r in
  let body = decode_body (Codec.Reader.string r) in
  let signature = Codec.Reader.string r in
  let endorsement = Codec.Reader.option r read_tuple in
  Codec.Reader.expect_end r;
  { sender; body; signature; endorsement }

let encoded_size env = String.length (encode env)

let signature_count env = match env.endorsement with None -> 1 | Some _ -> 2

let endorsement_payload body first_sig = encode_body body ^ first_sig

(* ------------------------------------------------------------- equality *)

let equal_key (a : Request.key) (b : Request.key) =
  Int.equal (Request.compare_key a b) 0

let equal_order_info a b =
  Int.equal a.o b.o
  && String.equal a.digest b.digest
  && List.equal equal_key a.keys b.keys

(* The codec is canonical — fixed field order, no padding — so two bodies
   are equal exactly when their encodings are. *)
let equal_body a b = String.equal (encode_body a) (encode_body b)

let equal_endorsement (i, s) (j, u) = Int.equal i j && String.equal s u

let equal a b =
  Int.equal a.sender b.sender
  && String.equal a.signature b.signature
  && Option.equal equal_endorsement a.endorsement b.endorsement
  && equal_body a.body b.body

let body_tag = function
  | Order _ -> "order"
  | Ack _ -> "ack"
  | Fail_signal _ -> "fail_signal"
  | Back_log _ -> "back_log"
  | Start _ -> "start"
  | Start_ack _ -> "start_ack"
  | Start_tuples _ -> "start_tuples"
  | View_change _ -> "view_change"
  | New_view _ -> "new_view"
  | Unwilling _ -> "unwilling"
  | Heartbeat _ -> "heartbeat"
  | Pre_prepare _ -> "pre_prepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Bft_view_change _ -> "bft_view_change"
  | Bft_new_view _ -> "bft_new_view"
  | Checkpoint _ -> "checkpoint"
  | State_request _ -> "state_request"
  | State_response _ -> "state_response"
  | Probe _ -> "probe"
  | Probe_reply _ -> "probe_reply"

(* Bodies whose signatures serve as evidence shown to third parties — a
   double-signed order or fail-signal is forwarded as proof of what a
   coordinator said, and checkpoint certificates travel in state transfer.
   These must stay transferable (asymmetric) even when the quorum phases
   run on MAC authenticator vectors. *)
let accountable_body = function
  | Order _ | Fail_signal _ | Checkpoint _ -> true
  | Ack _ | Back_log _ | Start _ | Start_ack _ | Start_tuples _
  | View_change _ | New_view _ | Unwilling _ | Heartbeat _ | Pre_prepare _
  | Prepare _ | Commit _ | Bft_view_change _ | Bft_new_view _
  | State_request _ | State_response _ | Probe _ | Probe_reply _ ->
    false

let pp fmt env =
  Format.fprintf fmt "%s from %d%s" (body_tag env.body) env.sender
    (match env.endorsement with
    | None -> ""
    | Some (who, _) -> Printf.sprintf " endorsed by %d" who)
