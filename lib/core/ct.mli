(** The CT crash-tolerant baseline (paper Section 5).

    "CT is simply derived from SC, with no process being paired and no
    cryptographic techniques used": n = 2f+1 processes tolerating f crash
    faults, a fixed-rank coordinator that multicasts its order message
    directly to all (SC's phases 1 and 2 collapse into one 1-to-n
    dissemination), and the same n-to-n ack/commit phase with quorum n-f.

    The paper uses CT only to show how much slower the Byzantine-tolerant
    protocols are than a crash-tolerant one; a simple timeout-based
    coordinator rotation is included so the protocol is live under crash
    faults, but it is not part of the measured scenarios. *)

type config = {
  f : int;
  batching_interval : Sof_sim.Simtime.t;
  batch_size_limit : int;
  digest : Sof_crypto.Digest_alg.t;
  suspect_timeout : Sof_sim.Simtime.t;
      (** How long a request may stay unordered before the coordinator is
          suspected of having crashed. *)
  checkpoint_interval : int;
      (** Checkpoint every this-many delivered sequence numbers; 0 (default)
          disables checkpointing and state transfer.  Under the crash-only
          model a checkpoint is stable once f+1 distinct processes claim the
          same state digest — no signatures involved. *)
  timing : Config.timing;
      (** [Static] (default) keeps the configured suspicion timeout;
          [Adaptive] probes the current coordinator, derives the suspicion
          budget from the measured round-trip (Jacobson RTO), and doubles it
          per consecutive rotation, capped at 64 x the configured timeout.
          Liveness-only: no safety property depends on it. *)
}

val make_config :
  ?batching_interval:Sof_sim.Simtime.t ->
  ?batch_size_limit:int ->
  ?digest:Sof_crypto.Digest_alg.t ->
  ?suspect_timeout:Sof_sim.Simtime.t ->
  ?checkpoint_interval:int ->
  ?timing:Config.timing ->
  f:int ->
  unit ->
  config
(** @raise Config.Invalid_config when [f < 1], [checkpoint_interval < 0],
    or [suspect_timeout] is non-positive. *)

val process_count : config -> int
(** [2f+1]. *)

type t

val create : ctx:Context.t -> config:config -> t
val start : t -> unit
val on_request : t -> Sof_smr.Request.t -> unit
val on_message : t -> src:int -> Message.envelope -> unit

val id : t -> int
val coordinator : t -> int
(** Current coordinator's process id. *)

val epoch : t -> int
(** Coordinator rotations this process has gone through (0 = the initial
    coordinator was never suspected) — the rotation-churn measure the
    gray-failure invariants audit. *)

val max_committed : t -> int
val delivered_seq : t -> int

val request_recovery : t -> unit
(** Start state transfer: ask every peer for everything above this process's
    delivery point and install what comes back.  Called by the harness right
    after a crash-restart; also triggered internally when checkpoint traffic
    shows this process a full interval behind.  Idempotent while a fetch is
    in flight. *)

val log_length : t -> int
(** Retained order-log length — what truncation keeps bounded. *)

val stable_checkpoint_seq : t -> int
(** Latest stable checkpoint sequence number (0 when none). *)

val latest_stable : t -> (Checkpoint.cert * string) option
(** Latest stable checkpoint certificate with its image bytes — what a
    durable harness persists alongside the write-ahead log. *)

val client_marks : t -> (int * int) list
(** Per-client delivery high-water marks, sorted by client. *)

val recover_local : t -> cert:Checkpoint.cert option -> image:string ->
  entries:Checkpoint.entry list -> bool
(** Install locally persisted state (WAL replay) as a synthetic self-offer,
    verified exactly like a peer's state-transfer response: certificate,
    image digest, and per-entry digest checks all apply, so damaged or
    tampered suffixes are excluded rather than installed.  Returns whether
    delivery advanced; callers escalate to {!request_recovery} when the
    local log was damaged or insufficient. *)
