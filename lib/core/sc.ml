module Simtime = Sof_sim.Simtime
module Request = Sof_smr.Request
module Key_map = Request.Key_map
module Key_set = Request.Key_set
module Int_set = Set.Make (Int)
module Estimator = Sof_net.Delay_estimator

(* Votes for one sequence number, keyed by digest: a vote is either being a
   signatory of the doubly-signed order or having sent a matching ack.  The
   proof tuples back the BackLog's "proof of commitment". *)
type votes = {
  mutable sources : Int_set.t;
  mutable proof : (int * string) list;
}

type order_state = {
  o : int;
  mutable digest : string;  (* authoritative once [have_order] *)
  mutable keys : Request.key list;
  mutable have_order : bool;
  mutable vote_c : int;  (* coordinator rank that produced the order *)
  mutable acked : bool;
  mutable committed : bool;
  mutable null : bool;  (* gap filler or Start placeholder: delivers nothing *)
  votes_by_digest : (string, votes) Hashtbl.t;
  (* trace spans currently open at this process for this order *)
  mutable sp_batch : bool;
  mutable sp_endorse : bool;
  mutable sp_order : bool;
  mutable sp_ack : bool;
}

type backlog_rec = {
  bl_failed_pair : int;
  bl_max_committed : int;
  bl_committed_digest : string;
  bl_proof_c : int;
  bl_proof : (int * string) list;
  bl_stable : Checkpoint.cert option;
  bl_uncommitted : Message.order_info list;
}

type t = {
  ctx : Context.t;
  config : Config.t;
  fault : Fault.t;
  counterpart_fail_signal : string option;
  pair_rank : int option;
  counterpart : int option;
  all_ids : int list;
  (* coordinator tracking *)
  mutable coord : int;
  mutable failed_pairs : Int_set.t;
  mutable dumbed_pairs : Int_set.t;
  mutable installing : bool;
  (* request pool *)
  mutable pending : Request.t Key_map.t;
  mutable arrival : Simtime.t Key_map.t;
  mutable ordered_keys : Key_set.t;
  mutable delivered_keys : Key_set.t;
  mutable view_ordered_keys : Key_set.t;
      (* keys ordered under the current coordinator, for the shadow's
         double-ordering check; reset at each install *)
  mutable executed : Request.t Key_map.t;
      (* delivered request bodies, kept so the shadow can still verify a
         digest over re-proposed requests *)
  (* order log *)
  orders : (int, order_state) Hashtbl.t;
  mutable max_committed : int;
  mutable committed_digest : string;
  mutable committed_proof_c : int;
  mutable committed_proof : (int * string) list;
  mutable delivered : int;
  (* coordinator primary *)
  mutable next_seq : int;
  mutable batch_timer : Context.timer option;
  mutable endorsement_watches : (int * Context.timer) list;
  (* coordinator shadow *)
  mutable expected_seq : int;
  mutable last_progress : Simtime.t;  (* last endorsement made as shadow *)
  mutable stashed_endorsements : (Simtime.t * Message.envelope * Message.order_info) list;
      (* deferred Orders, kept with their decoded info so replay needs no
         re-dispatch *)
  mutable watch_timer : Context.timer option;
  (* pair liveness *)
  mutable pair_active : bool;
  mutable fail_signalled : bool;
  mutable last_heard : Simtime.t;
  mutable heartbeat_timer : Context.timer option;
  mutable beat : int;
  (* install *)
  backlogs_by_c : (int, (int * backlog_rec) list ref) Hashtbl.t;
  mutable start_env : Message.envelope option;
  mutable start_acks : (int * string) list;
  mutable have_tuples : bool;
  mutable sent_tuples : bool;
  mutable start_sent : bool;
  mutable start_covers : Message.order_info list;
  mutable anchor_seen : int;
      (* highest Start anchor installed: every sequence at or below it is
         proven committed somewhere, so late orders from superseded
         coordinators may still be adopted for those sequences (catch-up for
         a replica that lagged across the install) *)
  mutable stash_future : (int * Message.envelope) list;
  (* trace spans open at this process for fail-over accounting *)
  mutable failover_span : int option;
  mutable install_span : int option;
  (* checkpointing and state transfer *)
  rcv : Recovery.state;
  mutable recent_delivered : (int * Request.t list) list;
      (* delivered batches retained for serving state transfer, newest first;
         pruned one interval behind the stable checkpoint.  Only maintained
         when checkpointing is on. *)
  mutable ckpt_proposals : (Message.envelope * int * string) list;
      (* phase-1 checkpoint proposals from this pair's primary, stashed by
         the shadow until its own boundary image for that seq exists *)
  mutable ckpt_certs : Checkpoint.cert list;
      (* verified certificates awaiting this process's own boundary image *)
  mutable fetch_timer : Context.timer option;
  (* adaptive timing (Config.Adaptive only; untouched in Static mode so
     seeded static runs keep the exact stream layout) *)
  ests : Estimator.t option array;  (* per-peer RTT estimators, lazy *)
  probe_accepted : int array;  (* highest reply nonce accepted per peer *)
  mutable probe_nonce : int;
  mutable fetch_backoff : int;  (* doublings applied to fetch retries *)
  mutable shadow_watch_level : int;  (* doublings on the shadow's stall budget *)
  mutable hb_level : int;  (* doublings on the heartbeat silence tolerance *)
  mutable stash_retry_armed : bool;
}

(* ------------------------------------------------------------ accessors *)

let id t = t.ctx.Context.id
let coordinator_rank t = t.coord
let max_committed t = t.max_committed
let delivered_seq t = t.delivered
let is_installing t = t.installing
let has_fail_signalled t = t.fail_signalled
let pending_requests t = Key_map.cardinal t.pending

let live_f t = t.config.Config.f - Int_set.cardinal t.dumbed_pairs

let quorum t =
  Config.process_count t.config - t.config.Config.f - Int_set.cardinal t.dumbed_pairs

let dumb_ids t =
  Int_set.fold
    (fun r acc ->
      List.fold_left (fun acc m -> Int_set.add m acc) acc (Config.candidate_members t.config r))
    t.dumbed_pairs Int_set.empty

let is_dumb t = Int_set.mem (id t) (dumb_ids t)

let i_am_coordinator_primary t =
  (not t.installing) && Int.equal (id t) (Config.primary_of_pair t.config t.coord)

let coordinator_is_pair t = Config.candidate_is_pair t.config t.coord

let i_am_coordinator_shadow t =
  (not t.installing) && coordinator_is_pair t
  && Int.equal (id t) (Config.shadow_of_pair t.config t.coord)

let null_digest t = Batch.digest t.config.Config.digest (Batch.make [])

(* --------------------------------------------------------- transmission *)

let can_transmit t =
  (not (is_dumb t)) && not (Fault.is_mute t.fault ~now:(t.ctx.Context.now ()))

let send t ~dst env = if can_transmit t then t.ctx.Context.send ~dst env

let multicast t ~dsts env = if can_transmit t then t.ctx.Context.multicast ~dsts env

let others t = List.filter (fun p -> not (Int.equal p (id t))) t.all_ids

(* Accountable bodies (orders, fail-signals, checkpoints) are signed with
   the transferable mechanism; everything else uses the wire mode, which
   may be a cheap MAC authenticator vector. *)
let signer_for t body =
  if Message.accountable_body body then t.ctx.Context.sign_acc
  else t.ctx.Context.sign

let verifier_for t body =
  if Message.accountable_body body then t.ctx.Context.verify_acc
  else t.ctx.Context.verify

let make_signed t body =
  let payload = Message.encode_body body in
  {
    Message.sender = id t;
    body;
    signature = signer_for t body payload;
    endorsement = None;
  }

(* ------------------------------------------------------ adaptive timing *)

let adaptive t =
  match t.config.Config.timing with Config.Adaptive -> true | Config.Static -> false

let est_for t peer =
  match t.ests.(peer) with
  | Some e -> e
  | None ->
    let e = Estimator.create ~initial:t.config.Config.pair_delay_estimate () in
    t.ests.(peer) <- Some e;
    e

(* The deadline standing in for the static differential-delay bound.  In
   adaptive mode it is the counterpart link's Jacobson deadline; a round
   trip upper-bounds the one-way differential, so the substitution is
   conservative — it can only delay a time-domain fail-signal, never forge
   evidence (timers gate accusations, not safety). *)
let pair_estimate t =
  match (t.config.Config.timing, t.counterpart) with
  | Config.Static, _ | _, None -> t.config.Config.pair_delay_estimate
  | Config.Adaptive, Some cp -> Estimator.timeout (est_for t cp)

(* Hard cap on any backed-off retry timer: 64x the configured estimate
   keeps degraded-mode detection latency finite. *)
let timer_cap t = Simtime.ns (64 * Simtime.to_ns t.config.Config.pair_delay_estimate)

(* Adaptive suspicion discipline.  An expired adaptive deadline is first
   evidence of a wrong estimate, not of a failed counterpart: the Jacobson
   estimate lags a delay that is still growing (each measurement is a full
   round trip stale), so a merely-slow peer routinely overshoots it.  Each
   watch therefore doubles its own budget and re-waits, and accuses only
   once the backed-off budget has saturated the hard cap and the counterpart
   still missed it.  Static mode keeps the paper's Sync reading — one
   configured estimate, lateness is failure — untouched.  The trade is
   explicit: adaptive detection of a genuinely dead counterpart takes up to
   ~2x the cap (the doubling sum), bounded and documented, in exchange for
   emitting no premature signal against a straggler. *)
let budget_at t ~level =
  Estimator.backed_off (pair_estimate t) ~level ~cap:(timer_cap t)

(* True while backing off further is allowed; once the budget has walked to
   the cap the next miss is an accusation. *)
let can_back_off t ~level =
  adaptive t && Simtime.compare (budget_at t ~level) (timer_cap t) < 0

let send_probe t dst =
  t.probe_nonce <- t.probe_nonce + 1;
  let at = Simtime.to_ns (t.ctx.Context.now ()) in
  send t ~dst (make_signed t (Message.Probe { nonce = t.probe_nonce; at }))

let note_probe_reply t ~src ~nonce ~at =
  if adaptive t && nonce > t.probe_accepted.(src) then begin
    t.probe_accepted.(src) <- nonce;
    Estimator.observe (est_for t src)
      (Simtime.diff (t.ctx.Context.now ()) (Simtime.ns at))
  end

let endorse t (env : Message.envelope) =
  let payload = Message.endorsement_payload env.Message.body env.Message.signature in
  { env with Message.endorsement = Some (id t, signer_for t env.Message.body payload) }

(* Verify every signature an envelope carries. *)
let authentic t (env : Message.envelope) =
  let payload = Message.encode_body env.Message.body in
  let verify = verifier_for t env.Message.body in
  verify ~signer:env.Message.sender ~msg:payload
    ~signature:env.Message.signature
  && begin
       match env.Message.endorsement with
       | None -> true
       | Some (who, s) ->
         not (Int.equal who env.Message.sender)
         && verify ~signer:who
              ~msg:(Message.endorsement_payload env.Message.body env.Message.signature)
              ~signature:s
     end

(* Is this envelope doubly-signed by exactly the members of pair [rank]? *)
let doubly_signed_by_pair t ~rank (env : Message.envelope) =
  Config.candidate_is_pair t.config rank
  && begin
       match env.Message.endorsement with
       | None -> false
       | Some (who, _) ->
         let members = Config.candidate_members t.config rank in
         List.mem env.Message.sender members && List.mem who members
     end

(* An order from candidate [rank] is acceptable when doubly-signed by the
   pair, or singly-signed when the candidate is SC's final unpaired
   process (which, by SC2 and the ranking argument, must be non-faulty when
   it coordinates). *)
let valid_coordinator_message t ~rank (env : Message.envelope) =
  if Config.candidate_is_pair t.config rank then doubly_signed_by_pair t ~rank env
  else
    env.Message.endorsement = None
    && Int.equal env.Message.sender (Config.primary_of_pair t.config rank)

(* ----------------------------------------------------------- order log *)

let get_order t o =
  match Hashtbl.find_opt t.orders o with
  | Some st -> st
  | None ->
    let st =
      {
        o;
        digest = "";
        keys = [];
        have_order = false;
        vote_c = 0;
        acked = false;
        committed = false;
        null = false;
        votes_by_digest = Hashtbl.create 4;
        sp_batch = false;
        sp_endorse = false;
        sp_order = false;
        sp_ack = false;
      }
    in
    Hashtbl.replace t.orders o st;
    st

let votes_for st digest =
  match Hashtbl.find_opt st.votes_by_digest digest with
  | Some v -> v
  | None ->
    let v = { sources = Int_set.empty; proof = [] } in
    Hashtbl.replace st.votes_by_digest digest v;
    v

let add_vote st ~digest ~source ~signature =
  let v = votes_for st digest in
  if not (Int_set.mem source v.sources) then begin
    v.sources <- Int_set.add source v.sources;
    v.proof <- (source, signature) :: v.proof
  end

(* ---------------------------------------------------------- trace spans *)
(* [Context.emit] costs no simulated CPU, so span instrumentation cannot
   perturb seeded trajectories.  Each sp_* flag means "open at this
   process"; a close is only ever emitted when the flag is set, so spans
   balance whenever the order commits locally. *)

let span_open t phase seq = t.ctx.Context.emit (Context.Span_open { phase; seq })
let span_close t phase seq = t.ctx.Context.emit (Context.Span_close { phase; seq })

let open_batch_span t st =
  if (not st.sp_batch) && not st.committed then begin
    st.sp_batch <- true;
    span_open t Context.Batch_phase st.o
  end

let open_endorse_span t st =
  if st.sp_batch && not st.sp_endorse then begin
    st.sp_endorse <- true;
    span_open t Context.Endorse_phase st.o
  end

let close_endorse_span t st =
  if st.sp_endorse then begin
    st.sp_endorse <- false;
    span_close t Context.Endorse_phase st.o
  end

let open_order_span t st =
  if st.sp_batch && not st.sp_order then begin
    st.sp_order <- true;
    span_open t Context.Order_phase st.o
  end

let ack_span_transition t st =
  if st.sp_order then begin
    st.sp_order <- false;
    span_close t Context.Order_phase st.o
  end;
  if st.sp_batch && not st.sp_ack then begin
    st.sp_ack <- true;
    span_open t Context.Ack_phase st.o
  end

let close_batch_spans t st =
  close_endorse_span t st;
  if st.sp_order then begin
    st.sp_order <- false;
    span_close t Context.Order_phase st.o
  end;
  if st.sp_ack then begin
    st.sp_ack <- false;
    span_close t Context.Ack_phase st.o
  end;
  if st.sp_batch then begin
    st.sp_batch <- false;
    span_close t Context.Batch_phase st.o
  end

(* ------------------------------------------------- checkpointing (SC) *)
(* Pair-endorsed stable checkpoints: the coordinator primary signs its state
   digest at each boundary and its shadow endorses after comparing against
   its own boundary image — at most one pair member is faulty, so the double
   signature carries at least one correct process's word for the digest.
   SC's unpaired last candidate certifies with a single signature: by the
   sequential-failure assumption it is correct whenever it coordinates. *)

let log_length t = Hashtbl.length t.orders

let stable_checkpoint_seq t = Recovery.stable_seq t.rcv
let latest_stable t = Recovery.latest_stable t.rcv
let client_marks t = Recovery.marks t.rcv

let ckpt_pair_ok t ~primary ~endorser =
  let ranks = List.init (Config.candidate_count t.config) (fun i -> i + 1) in
  match endorser with
  | Some s ->
    List.exists
      (fun r ->
        Config.candidate_is_pair t.config r
        &&
        let members = Config.candidate_members t.config r in
        List.mem primary members && List.mem s members && not (Int.equal primary s))
      ranks
  | None ->
    List.exists
      (fun r ->
        (not (Config.candidate_is_pair t.config r))
        && Int.equal primary (Config.primary_of_pair t.config r))
      ranks

let ckpt_scheme t = Recovery.Pair_endorsed { pair_ok = ckpt_pair_ok t }

let cert_of_ckpt_env (env : Message.envelope) ~seq ~digest =
  {
    Checkpoint.cp_seq = seq;
    cp_digest = digest;
    cp_proof = [ (env.Message.sender, env.Message.signature) ];
    cp_endorsement = env.Message.endorsement;
  }

let truncate t upto =
  let stale = Hashtbl.fold (fun o _ acc -> if o <= upto then o :: acc else acc) t.orders [] in
  List.iter (Hashtbl.remove t.orders) stale;
  (* Keep one extra interval of delivered keys so a coordinator installed
     late that re-orders a just-delivered request is still deduplicated. *)
  let keep_above = upto - t.config.Config.checkpoint_interval in
  let dropped, kept = List.partition (fun (o, _) -> o <= keep_above) t.recent_delivered in
  List.iter
    (fun (_, requests) ->
      List.iter
        (fun (req : Request.t) ->
          t.delivered_keys <- Key_set.remove req.Request.key t.delivered_keys;
          t.ordered_keys <- Key_set.remove req.Request.key t.ordered_keys;
          t.executed <- Key_map.remove req.Request.key t.executed)
        requests)
    dropped;
  t.recent_delivered <- kept;
  t.ctx.Context.emit (Context.Log_truncated { upto; retained = Hashtbl.length t.orders })

(* A verified certificate becomes stable here once our own boundary image
   for that seq exists and matches; a cert running ahead of our delivery
   waits in [ckpt_certs] for the boundary to catch up. *)
let ckpt_adopt_cert t (cert : Checkpoint.cert) =
  let seq = cert.Checkpoint.cp_seq in
  if seq > Recovery.stable_seq t.rcv then begin
    match Recovery.image_at t.rcv ~seq with
    | Some image
      when String.equal
             (Checkpoint.image_digest t.config.Config.digest image)
             cert.Checkpoint.cp_digest ->
      if Recovery.note_stable t.rcv ~cert ~image then begin
        t.ctx.Context.emit
          (Context.Checkpoint_stable { seq; digest = cert.Checkpoint.cp_digest });
        span_close t Context.Checkpoint_phase seq;
        truncate t seq
      end
    | Some _ ->
      (* A certified digest that disagrees with our own image: not a state we
         can serve; ignore (a lagging or diverged replica recovers through
         state transfer instead). *)
      ()
    | None ->
      if not (List.exists (fun c -> Checkpoint.equal_cert c cert) t.ckpt_certs) then
        t.ckpt_certs <- cert :: t.ckpt_certs
  end

(* Shadow side of a phase-1 checkpoint proposal: endorse only when the
   primary's digest matches our own image for that boundary.  A mismatch is
   refused rather than fail-signalled — checkpoint certification is a
   liveness aid, and refusing keeps a diverged digest from being certified. *)
let shadow_handle_checkpoint t (env : Message.envelope) ~seq ~digest =
  match Recovery.image_at t.rcv ~seq with
  | Some image ->
    if String.equal (Checkpoint.image_digest t.config.Config.digest image) digest
    then begin
      let endorsed = endorse t env in
      multicast t ~dsts:(others t) endorsed;
      ckpt_adopt_cert t (cert_of_ckpt_env endorsed ~seq ~digest)
    end
  | None ->
    if seq > t.delivered then
      t.ckpt_proposals <- (env, seq, digest) :: t.ckpt_proposals

let retry_ckpt_stash t =
  let proposals = t.ckpt_proposals in
  t.ckpt_proposals <- [];
  List.iter
    (fun (env, seq, digest) ->
      if seq > Recovery.stable_seq t.rcv then begin
        match Recovery.image_at t.rcv ~seq with
        | Some _ -> shadow_handle_checkpoint t env ~seq ~digest
        | None -> t.ckpt_proposals <- (env, seq, digest) :: t.ckpt_proposals
      end)
    proposals;
  let certs = t.ckpt_certs in
  t.ckpt_certs <- [];
  List.iter (fun cert -> ckpt_adopt_cert t cert) certs

let checkpoint_boundary t o =
  let image =
    Checkpoint.wrap_image ~state:(t.ctx.Context.snapshot ()) ~marks:(Recovery.marks t.rcv)
  in
  t.ctx.Context.digest_charge (String.length image);
  let digest = Checkpoint.image_digest t.config.Config.digest image in
  Recovery.note_image t.rcv ~seq:o ~image;
  span_open t Context.Checkpoint_phase o;
  if i_am_coordinator_primary t then begin
    let env = make_signed t (Message.Checkpoint { seq = o; digest }) in
    if coordinator_is_pair t then
      (* Phase 1: 1-to-1 to the shadow for endorsement. *)
      send t ~dst:(Config.shadow_of_pair t.config t.coord) env
    else begin
      (* Unpaired coordinator: singleton certificate straight to everyone. *)
      multicast t ~dsts:(others t) env;
      ckpt_adopt_cert t (cert_of_ckpt_env env ~seq:o ~digest)
    end
  end;
  retry_ckpt_stash t

(* ------------------------------------------------------------- delivery *)

let rec advance_delivery t =
  match Hashtbl.find_opt t.orders (t.delivered + 1) with
  | None -> ()
  | Some st when not st.committed -> ()
  | Some st ->
    if st.null || st.keys = [] then begin
      t.delivered <- st.o;
      let batch = Batch.make [] in
      t.ctx.Context.deliver ~seq:st.o batch;
      t.ctx.Context.emit (Context.Delivered { seq = st.o; batch });
      if t.config.Config.checkpoint_interval > 0 then begin
        t.recent_delivered <- (st.o, []) :: t.recent_delivered;
        if Checkpoint.is_boundary ~interval:t.config.Config.checkpoint_interval st.o then
          checkpoint_boundary t st.o
      end;
      advance_delivery t
    end
    else begin
      (* At-most-once: a coordinator that lagged across an install may
         re-order requests an earlier coordinator already committed.  Honest
         processes agree on the committed prefix, so they prune the same
         already-delivered keys and execute identical sub-batches. *)
      let fresh =
        List.filter
          (fun k ->
            (not (Key_set.mem k t.delivered_keys))
            && (t.config.Config.checkpoint_interval = 0 || Recovery.fresh_key t.rcv k))
          st.keys
      in
      let requests =
        List.filter_map (fun k -> Key_map.find_opt k t.pending) fresh
      in
      if Int.equal (List.length requests) (List.length fresh) then begin
        t.delivered <- st.o;
        List.iter
          (fun k ->
            t.delivered_keys <- Key_set.add k t.delivered_keys;
            if t.config.Config.checkpoint_interval > 0 then
              Recovery.mark_delivered t.rcv k;
            (match Key_map.find_opt k t.pending with
            | Some r -> t.executed <- Key_map.add k r t.executed
            | None -> ());
            t.pending <- Key_map.remove k t.pending;
            t.arrival <- Key_map.remove k t.arrival)
          st.keys;
        let batch = Batch.make requests in
        t.ctx.Context.deliver ~seq:st.o batch;
        t.ctx.Context.emit (Context.Delivered { seq = st.o; batch });
        if t.config.Config.checkpoint_interval > 0 then begin
          t.recent_delivered <- (st.o, requests) :: t.recent_delivered;
          if Checkpoint.is_boundary ~interval:t.config.Config.checkpoint_interval st.o then
            checkpoint_boundary t st.o
        end;
        advance_delivery t
      end
      (* else: some requests not here yet; clients broadcast to all over a
         reliable network, so they will arrive and retrigger delivery. *)
    end

let record_commit t st =
  if not st.committed then begin
    close_batch_spans t st;
    st.committed <- true;
    if st.o > t.max_committed then begin
      t.max_committed <- st.o;
      t.committed_digest <- st.digest;
      t.committed_proof_c <- st.vote_c;
      t.committed_proof <-
        (match Hashtbl.find_opt st.votes_by_digest st.digest with
        | Some v -> v.proof
        | None -> [])
    end;
    t.ctx.Context.emit (Context.Committed { seq = st.o; digest = st.digest; keys = st.keys });
    advance_delivery t
  end

let try_commit t st =
  if st.have_order && not st.committed then begin
    let v = votes_for st st.digest in
    if Int_set.cardinal v.sources >= quorum t then begin
      record_commit t st;
      (* Committing the Start placeholder commits everything it covers. *)
      if st.null && t.start_covers <> [] then begin
        let covered = t.start_covers in
        t.start_covers <- [];
        List.iter
          (fun (info : Message.order_info) ->
            let cst = get_order t info.Message.o in
            if not cst.committed then begin
              cst.have_order <- true;
              cst.digest <- info.Message.digest;
              cst.keys <- info.Message.keys;
              record_commit t cst
            end)
          covered
      end;
      advance_delivery t
    end
  end

(* --------------------------------------------------------------- acking *)

let send_ack t st =
  if st.have_order && not st.acked then begin
    st.acked <- true;
    ack_span_transition t st;
    let body = Message.Ack { c = st.vote_c; o = st.o; digest = st.digest } in
    let env = make_signed t body in
    multicast t ~dsts:t.all_ids env
  end

(* Process an authentic order from the current coordinator (doubly-signed
   for pairs, singly-signed for the unpaired last candidate). *)
let accept_order t (env : Message.envelope) ~c ~(info : Message.order_info) =
  let st = get_order t info.Message.o in
  if st.have_order then begin
    (* Duplicate (the 2-to-n phase delivers two copies); votes still count. *)
    if String.equal st.digest info.Message.digest then begin
      add_vote st ~digest:st.digest ~source:env.Message.sender
        ~signature:env.Message.signature;
      (match env.Message.endorsement with
      | Some (who, s) -> add_vote st ~digest:st.digest ~source:who ~signature:s
      | None -> ());
      send_ack t st;
      try_commit t st
    end
    (* Conflicting doubly-signed orders would mean both pair members failed
       — outside the fault model; first writer wins. *)
  end
  else begin
    st.have_order <- true;
    st.digest <- info.Message.digest;
    st.keys <- info.Message.keys;
    st.vote_c <- c;
    open_batch_span t st;
    close_endorse_span t st;
    open_order_span t st;
    if info.Message.keys = [] then st.null <- true;
    List.iter (fun k -> t.ordered_keys <- Key_set.add k t.ordered_keys) info.Message.keys;
    add_vote st ~digest:st.digest ~source:env.Message.sender
      ~signature:env.Message.signature;
    (match env.Message.endorsement with
    | Some (who, s) -> add_vote st ~digest:st.digest ~source:who ~signature:s
    | None -> ());
    send_ack t st;
    try_commit t st
  end

(* ---------------------------------------------- state transfer (SC) *)

(* Serve the stable checkpoint image (when the requester is behind it), the
   retained delivered batches, and the committed-but-undelivered tail.  Every
   entry digest is recomputed over exactly the requests served — correct
   processes deliver identical filtered batches, so their recomputed digests
   agree and f+1 matching claims pin each entry down at the requester.  A
   Byzantine responder can serve a corrupt image ([Corrupt_checkpoint_image])
   or a lazily stale checkpoint ([Stale_checkpoint]); the first is rejected
   against the certified digest, the second simply loses to fresher offers. *)
let serve_state_request t ~src ~have =
  let stable =
    match t.fault with
    | Fault.Stale_checkpoint -> Recovery.previous_stable t.rcv
    | _ -> Recovery.latest_stable t.rcv
  in
  let cert, image =
    match stable with
    | Some (c, img) when c.Checkpoint.cp_seq > have -> (Some c, img)
    | Some _ | None -> (None, "")
  in
  let image =
    match t.fault with
    | Fault.Corrupt_checkpoint_image when String.length image > 0 ->
      let b = Bytes.of_string image in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      Bytes.to_string b
    | _ -> image
  in
  let base = match cert with Some c -> max have c.Checkpoint.cp_seq | None -> have in
  let entries =
    match t.fault with
    | Fault.Stale_checkpoint -> []
    | _ ->
      let delivered_entries =
        List.filter_map
          (fun (o, requests) ->
            if o > base then begin
              let batch = Batch.make requests in
              t.ctx.Context.digest_charge (Batch.encoded_size batch);
              Some
                {
                  Checkpoint.e_o = o;
                  e_digest = Batch.digest t.config.Config.digest batch;
                  e_requests = requests;
                }
            end
            else None)
          t.recent_delivered
      in
      let tail =
        Hashtbl.fold
          (fun o st acc ->
            if o <= t.delivered || o <= base || not st.committed then acc
            else begin
              let requests =
                List.filter_map (fun k -> Key_map.find_opt k t.pending) st.keys
              in
              if Int.equal (List.length requests) (List.length st.keys) then begin
                let batch = Batch.make requests in
                t.ctx.Context.digest_charge (Batch.encoded_size batch);
                {
                  Checkpoint.e_o = o;
                  e_digest = Batch.digest t.config.Config.digest batch;
                  e_requests = requests;
                }
                :: acc
              end
              else acc
            end)
          t.orders []
      in
      List.sort
        (fun (a : Checkpoint.entry) b -> Int.compare a.Checkpoint.e_o b.Checkpoint.e_o)
        (delivered_entries @ tail)
  in
  (* A Byzantine responder serving from a tampered local log: the checkpoint
     is genuine but every entry digest is flipped, so no entry matches its
     recomputed batch digest and the requester's entry checks exclude the
     whole suffix. *)
  let entries =
    match t.fault with
    | Fault.Corrupt_wal_suffix ->
      List.map
        (fun (e : Checkpoint.entry) ->
          match e.Checkpoint.e_digest with
          | "" -> e
          | d ->
            let b = Bytes.of_string d in
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
            { e with Checkpoint.e_digest = Bytes.to_string b })
        entries
    | _ -> entries
  in
  send t ~dst:src (make_signed t (Message.State_response { cert; image; entries }))

let entry_ok t (e : Checkpoint.entry) =
  let batch = Batch.make e.Checkpoint.e_requests in
  t.ctx.Context.digest_charge (Batch.encoded_size batch);
  String.equal (Batch.digest t.config.Config.digest batch) e.Checkpoint.e_digest

(* Install the best certified image above our delivery point, then the
   contiguous entry suffix with f+1 matching claims per entry (at least one
   claimant is correct).  Transferred entries enter the log as committed and
   are delivered by the normal in-sequence walk; no Committed event is
   re-emitted for them. *)
let install_from_offers ?(announce = true) t ~entry_quorum =
  let image_installed =
    match Recovery.best_image t.rcv ~above:t.delivered with
    | Some (cert, image, _) -> begin
      match Checkpoint.unwrap_image image with
      | None -> false (* digest-verified yet malformed: refuse quietly *)
      | Some (snap, marks) ->
        t.ctx.Context.restore snap;
        Recovery.merge_marks t.rcv marks;
        t.delivered <- cert.Checkpoint.cp_seq;
        if t.max_committed < cert.Checkpoint.cp_seq then
          t.max_committed <- cert.Checkpoint.cp_seq;
        Recovery.note_image t.rcv ~seq:cert.Checkpoint.cp_seq ~image;
        if Recovery.note_stable t.rcv ~cert ~image then
          t.ctx.Context.emit
            (Context.Checkpoint_stable
               { seq = cert.Checkpoint.cp_seq; digest = cert.Checkpoint.cp_digest });
        truncate t cert.Checkpoint.cp_seq;
        true
    end
    | None -> false
  in
  let installed_at = t.delivered in
  let entries =
    Recovery.select_entries ~quorum:entry_quorum ~base:t.delivered
      ~entry_ok:(entry_ok t) t.rcv
  in
  List.iter
    (fun (e : Checkpoint.entry) ->
      let st = get_order t e.Checkpoint.e_o in
      if not st.committed then begin
        st.have_order <- true;
        st.digest <- e.Checkpoint.e_digest;
        st.keys <- List.map (fun (r : Request.t) -> r.Request.key) e.Checkpoint.e_requests;
        if e.Checkpoint.e_requests = [] then st.null <- true;
        st.committed <- true;
        List.iter
          (fun (r : Request.t) ->
            t.ordered_keys <- Key_set.add r.Request.key t.ordered_keys;
            if
              (not (Key_map.mem r.Request.key t.pending))
              && not (Key_set.mem r.Request.key t.delivered_keys)
            then t.pending <- Key_map.add r.Request.key r t.pending)
          e.Checkpoint.e_requests;
        if st.o > t.max_committed then t.max_committed <- st.o
      end)
    entries;
  if announce && (image_installed || entries <> []) then
    t.ctx.Context.emit
      (Context.State_transfer_installed
         { seq = installed_at; entries = List.length entries });
  advance_delivery t

let attempt_install t = install_from_offers t ~entry_quorum:(t.config.Config.f + 1)

(* Local-first recovery: the locally persisted checkpoint image and WAL
   entry suffix enter as a synthetic self-offer, verified exactly like a
   peer's State_response — pair-endorsed certificate, image bytes against
   the certified digest, each entry against its recomputed batch digest.
   Entry quorum 1: the replica vouches only for its own log, and the
   digest checks exclude any torn or tampered suffix entry-by-entry.
   Returns whether delivery advanced; the caller escalates to peer repair
   when it did not or the log was damaged. *)
let recover_local t ~cert ~image ~entries =
  let before = t.delivered in
  let cert_ok =
    match cert with
    | None -> true
    | Some c ->
      t.ctx.Context.digest_charge (String.length image);
      Recovery.verify_cert
        ~verify:(fun ~signer ~msg ~signature ->
          t.ctx.Context.verify_acc ~signer ~msg ~signature)
        ~scheme:(ckpt_scheme t) c
      && String.equal
           (Checkpoint.image_digest t.config.Config.digest image)
           c.Checkpoint.cp_digest
  in
  if not cert_ok then begin
    t.ctx.Context.emit (Context.State_transfer_rejected { from = id t });
    false
  end
  else begin
    Recovery.clear_offers t.rcv;
    Recovery.add_offer t.rcv
      { Recovery.st_from = id t; st_cert = cert; st_image = image; st_entries = entries };
    (* The synthetic self-offer is a local replay, not a peer transfer:
       the harness announces it as [Wal_replayed], so the install stays
       silent to keep transfer accounting honest. *)
    install_from_offers ~announce:false t ~entry_quorum:1;
    Recovery.clear_offers t.rcv;
    (* A recovered process must never mint at or below what it just
       restored: a fresh order under a committed sequence number could
       strand below the delivery low-water mark or conflict with an
       absorbed entry. *)
    if t.next_seq <= t.max_committed then t.next_seq <- t.max_committed + 1;
    t.delivered > before
  end

let fetch_target t =
  List.fold_left
    (fun acc (off : Recovery.offer) ->
      let acc =
        match off.Recovery.st_cert with
        | Some c -> max acc c.Checkpoint.cp_seq
        | None -> acc
      in
      List.fold_left
        (fun acc (e : Checkpoint.entry) -> max acc e.Checkpoint.e_o)
        acc off.Recovery.st_entries)
    0 (Recovery.offers t.rcv)

(* The fetch ends once we have caught up to everything offered — but only
   after offers from f+1 distinct responders, so at least one is honest.
   A single early "nothing above your watermark" reply (a peer that is
   itself recovering, or one whose stable checkpoint the requester already
   holds) must not terminate the fetch before a helpful offer arrives. *)
let maybe_end_fetch t =
  if
    Recovery.fetching t.rcv
    && List.length (Recovery.offers t.rcv) > t.config.Config.f
    && t.delivered >= fetch_target t
  then begin
    span_close t Context.Recovery_phase (Recovery.fetch_anchor t.rcv);
    Recovery.end_fetch t.rcv;
    (match t.fetch_timer with Some h -> h.Context.cancel () | None -> ());
    t.fetch_timer <- None;
    t.fetch_backoff <- 0;
    Recovery.clear_offers t.rcv
  end

let rec fetch_tick t =
  if Recovery.fetching t.rcv then begin
    Recovery.clear_offers t.rcv;
    multicast t ~dsts:(others t)
      (make_signed t (Message.State_request { have = t.delivered }));
    let base = Simtime.add t.config.Config.heartbeat_interval (pair_estimate t) in
    let delay =
      if adaptive t then begin
        let d = Estimator.backed_off base ~level:t.fetch_backoff ~cap:(timer_cap t) in
        t.fetch_backoff <- t.fetch_backoff + 1;
        d
      end
      else base
    in
    t.fetch_timer <- Some (t.ctx.Context.set_timer ~delay (fun () -> fetch_tick t))
  end

let request_recovery t =
  if not (Recovery.fetching t.rcv) then begin
    Recovery.begin_fetch t.rcv ~have:t.delivered;
    t.ctx.Context.emit (Context.State_transfer_started { have = t.delivered });
    span_open t Context.Recovery_phase t.delivered;
    fetch_tick t
  end

let handle_state_response t ~src ~cert ~image ~entries =
  if Recovery.fetching t.rcv then begin
    let cert_ok =
      match cert with
      | None -> true
      | Some c ->
        t.ctx.Context.digest_charge (String.length image);
        Recovery.verify_cert
          ~verify:(fun ~signer ~msg ~signature ->
            t.ctx.Context.verify_acc ~signer ~msg ~signature)
          ~scheme:(ckpt_scheme t) c
        && String.equal
             (Checkpoint.image_digest t.config.Config.digest image)
             c.Checkpoint.cp_digest
    in
    if not cert_ok then t.ctx.Context.emit (Context.State_transfer_rejected { from = src })
    else begin
      Recovery.add_offer t.rcv
        { Recovery.st_from = src; st_cert = cert; st_image = image; st_entries = entries };
      attempt_install t;
      maybe_end_fetch t
    end
  end

(* ---------------------------------------------------- pair fail-signals *)

let cancel_pair_timers t =
  (match t.watch_timer with Some h -> h.Context.cancel () | None -> ());
  t.watch_timer <- None;
  (match t.heartbeat_timer with Some h -> h.Context.cancel () | None -> ());
  t.heartbeat_timer <- None;
  List.iter (fun (_, h) -> h.Context.cancel ()) t.endorsement_watches;
  t.endorsement_watches <- []

let rec emit_fail_signal t ~value_domain =
  match (t.pair_rank, t.counterpart_fail_signal, t.counterpart) with
  | _ when t.fault = Fault.Withhold_fail_signal ->
    (* Saboteur: sit on the evidence.  Detection must come from the other
       member's signal or from the receivers' own timeouts. *)
    ()
  | Some rank, Some presig, Some cp when (not t.fail_signalled) && t.pair_active ->
    t.fail_signalled <- true;
    t.pair_active <- false;
    cancel_pair_timers t;
    (match t.batch_timer with Some h -> h.Context.cancel () | None -> ());
    t.batch_timer <- None;
    let body = Message.Fail_signal { pair = rank } in
    let env =
      { Message.sender = cp; body; signature = presig; endorsement = None }
    in
    let env = endorse t env in
    t.ctx.Context.emit (Context.Fail_signal_emitted { pair = rank; value_domain });
    if value_domain then t.ctx.Context.emit (Context.Value_fault_detected { pair = rank });
    multicast t ~dsts:(others t) env;
    note_pair_failed t rank
  | _ -> ()

and note_pair_failed t rank =
  if not (Int_set.mem rank t.failed_pairs) then begin
    t.failed_pairs <- Int_set.add rank t.failed_pairs;
    t.ctx.Context.emit (Context.Fail_signal_observed { pair = rank });
    (* Member of the pair that hasn't signalled yet: join in (the paper's
       rule that receiving the counterpart's fail-signal makes you emit
       yours). *)
    (match t.pair_rank with
    | Some r when Int.equal r rank && not t.fail_signalled -> emit_fail_signal t ~value_domain:false
    | Some _ | None -> ());
    if Int.equal rank t.coord then begin
      if t.failover_span = None then begin
        t.failover_span <- Some rank;
        span_open t Context.Failover_phase rank
      end;
      begin_install t
    end
  end

(* ----------------------------------------------------------- install *)

and begin_install t =
  let rec next_candidate r =
    if r > Config.candidate_count t.config then r (* exhausted: f faults already *)
    else if Int_set.mem r t.failed_pairs then next_candidate (r + 1)
    else r
  in
  let failed = t.coord in
  t.coord <- next_candidate (t.coord + 1);
  (match t.install_span with
  | Some r -> span_close t Context.Install_phase r
  | None -> ());
  t.install_span <- Some t.coord;
  span_open t Context.Install_phase t.coord;
  t.installing <- true;
  t.start_env <- None;
  t.start_acks <- [];
  t.have_tuples <- false;
  t.sent_tuples <- false;
  t.start_sent <- false;
  (match t.watch_timer with Some h -> h.Context.cancel () | None -> ());
  t.watch_timer <- None;
  (match t.batch_timer with Some h -> h.Context.cancel () | None -> ());
  t.batch_timer <- None;
  (* Messages stashed for this epoch (e.g. backlogs that raced ahead of the
     fail-signal) become processable now. *)
  let stash = List.rev t.stash_future in
  t.stash_future <- [];
  let replay () = List.iter (fun (src, env) -> on_message t ~src env) stash in
  (* IN1: multicast BackLog.  The watermark this process can PROVE to the
     new coordinator: its ack proof when it survived, else its stable
     checkpoint certificate (the durable proof a crash-restarted replica
     still holds).  Orders known above that provable point are listed even
     if locally committed — a replica that remembers a commit whose proof
     died with a crash must re-offer it, or the install would null-fill
     the sequence and diverge from the delivered history. *)
  let stable = Option.map fst (Recovery.latest_stable t.rcv) in
  let provable =
    if t.committed_proof <> [] then t.max_committed
    else
      match stable with Some c -> c.Checkpoint.cp_seq | None -> 0
  in
  let uncommitted =
    Hashtbl.fold
      (fun o st acc ->
        if st.have_order && o > provable then
          { Message.o; digest = st.digest; keys = st.keys } :: acc
        else acc)
      t.orders []
    |> List.sort (fun a b -> Int.compare a.Message.o b.Message.o)
  in
  let body =
    Message.Back_log
      {
        c = t.coord;
        failed_pair = failed;
        max_committed = t.max_committed;
        committed_digest = t.committed_digest;
        proof_c = t.committed_proof_c;
        proof = t.committed_proof;
        stable;
        uncommitted;
      }
  in
  let env = make_signed t body in
  multicast t ~dsts:(others t) env;
  store_backlog t ~src:(id t)
    {
      bl_failed_pair = failed;
      bl_max_committed = t.max_committed;
      bl_committed_digest = t.committed_digest;
      bl_proof_c = t.committed_proof_c;
      bl_proof = t.committed_proof;
      bl_stable = stable;
      bl_uncommitted = uncommitted;
    };
  replay ()

and store_backlog t ~src rec_ =
  let cell =
    match Hashtbl.find_opt t.backlogs_by_c t.coord with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.replace t.backlogs_by_c t.coord cell;
      cell
  in
  if not (List.mem_assoc src !cell) then begin
    cell := (src, rec_) :: !cell;
    maybe_send_start t
  end

(* IN2 at the new coordinator primary: compute NewBackLog and Start. *)
and maybe_send_start t =
  let am_new_primary =
    t.installing && Int.equal (id t) (Config.primary_of_pair t.config t.coord)
  in
  if am_new_primary && not t.start_sent then begin
    match Hashtbl.find_opt t.backlogs_by_c t.coord with
    | Some cell when List.length !cell >= quorum t ->
      t.start_sent <- true;
      let backlogs = List.map snd !cell in
      let start_o, anchor, new_back_log = compute_new_back_log t backlogs in
      let body = Message.Start { c = t.coord; start_o; anchor; new_back_log } in
      let env = make_signed t body in
      if Config.candidate_is_pair t.config t.coord then
        (* 1-signed to the shadow for endorsement. *)
        send t ~dst:(Config.shadow_of_pair t.config t.coord) env
      else begin
        (* The unpaired last candidate multicasts directly. *)
        multicast t ~dsts:(others t) env;
        handle_start t env ~c:t.coord
      end
    | Some _ | None -> ()
  end

and compute_new_back_log t backlogs =
  (* Anchor: the highest proven committed sequence number. *)
  let anchor =
    List.fold_left (fun acc b -> max acc b.bl_max_committed) 0 backlogs
  in
  (* Candidate uncommitted orders above the anchor, grouped by (o, digest)
     with their support counts.  The paper's principle: an order possibly
     committed by a correct process appears in at least f+1 of any (n-f)
     backlogs, so the best-supported digest is the only safe choice. *)
  let support : (int * string, int * Message.order_info) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun (info : Message.order_info) ->
          if info.Message.o > anchor then begin
            let key = (info.Message.o, info.Message.digest) in
            match Hashtbl.find_opt support key with
            | Some (n, i) -> Hashtbl.replace support key (n + 1, i)
            | None -> Hashtbl.replace support key (1, info)
          end)
        b.bl_uncommitted)
    backlogs;
  let by_o : (int, (int * Message.order_info) list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (o, _) (n, info) ->
      let cur = Option.value (Hashtbl.find_opt by_o o) ~default:[] in
      Hashtbl.replace by_o o ((n, info) :: cur))
    support;
  let chosen =
    Hashtbl.fold
      (fun _o cands acc ->
        let best =
          List.sort
            (fun (n1, i1) (n2, i2) ->
              let c = Int.compare n2 n1 in
              if c <> 0 then c else String.compare i1.Message.digest i2.Message.digest)
            cands
        in
        match best with [] -> acc | (_, info) :: _ -> info :: acc)
      by_o []
    |> List.sort (fun a b -> Int.compare a.Message.o b.Message.o)
  in
  let start_o =
    1 + List.fold_left (fun acc (i : Message.order_info) -> max acc i.Message.o) anchor chosen
  in
  (* Fill holes with null orders so delivery never stalls. *)
  let nd = null_digest t in
  let filled =
    List.init (start_o - anchor - 1) (fun idx ->
        let o = anchor + 1 + idx in
        match List.find_opt (fun (i : Message.order_info) -> Int.equal i.Message.o o) chosen with
        | Some info -> info
        | None -> { Message.o; digest = nd; keys = [] })
  in
  (start_o, anchor, filled)

(* Shadow of the new coordinator: verify the primary's Start against the
   backlogs received directly (the paper's p'c verification), endorse and
   multicast. *)
and handle_start_proposal t (env : Message.envelope) ~start_o ~anchor ~new_back_log =
  let my_backlogs =
    match Hashtbl.find_opt t.backlogs_by_c t.coord with
    | Some cell -> List.map snd !cell
    | None -> []
  in
  (* The primary may have seen commits we did not (its backlog quorum need
     not include ours), so the anchor may legitimately sit below our own
     max_committed; what the Start must never do is contradict an order we
     know committed or conflict with an (f+1)-supported digest. *)
  let commits_preserved =
    let rec check o =
      o > t.max_committed
      || begin
           (match Hashtbl.find_opt t.orders o with
           | Some st when st.committed ->
             List.exists
               (fun (i : Message.order_info) ->
                 Int.equal i.Message.o o && String.equal i.Message.digest st.digest)
               new_back_log
           | Some _ | None -> true)
           && check (o + 1)
         end
    in
    check (anchor + 1)
  in
  let plausible =
    start_o > anchor && commits_preserved
    && List.for_all
         (fun (info : Message.order_info) ->
           let competing =
             List.filter
               (fun b ->
                 List.exists
                   (fun (i : Message.order_info) ->
                     Int.equal i.Message.o info.Message.o
                     && not (String.equal i.Message.digest info.Message.digest))
                   b.bl_uncommitted)
               my_backlogs
           in
           List.length competing < t.config.Config.f + 1)
         new_back_log
  in
  if plausible then begin
    let endorsed = endorse t env in
    multicast t ~dsts:(others t) endorsed;
    (* Only reachable under the dispatch guard [c = t.coord]. *)
    handle_start t endorsed ~c:t.coord
  end
  else emit_fail_signal t ~value_domain:true

and handle_start t (env : Message.envelope) ~c =
  if Int.equal c t.coord && t.installing && Option.is_none t.start_env then begin
    t.start_env <- Some env;
    (* IN3: sign the Start and send the identifier-signature tuple to the
       new coordinator (skipped when f-effective is 1). *)
    let members = Config.candidate_members t.config c in
    if live_f t > 1 && not (List.mem (id t) members) then begin
      let start_digest = start_digest_of t env in
      let body = Message.Start_ack { c; start_digest } in
      let ack = make_signed t body in
      List.iter (fun m -> send t ~dst:m ack) members
    end;
    try_finish_install t
  end

and start_digest_of t (env : Message.envelope) =
  let payload = Message.encode_body env.Message.body in
  t.ctx.Context.digest_charge (String.length payload);
  Sof_crypto.Digest_alg.digest t.config.Config.digest payload

and handle_start_ack t (env : Message.envelope) ~c ~start_digest =
  let members = Config.candidate_members t.config c in
  if
    t.installing && Int.equal c t.coord
    && List.mem (id t) members
    && (not (List.mem env.Message.sender members))
    && not (List.mem_assoc env.Message.sender t.start_acks)
  then begin
    (* Only count tuples that match our own Start. *)
    let matches =
      match t.start_env with
      | Some start -> String.equal (start_digest_of t start) start_digest
      | None -> false
    in
    if matches then begin
      t.start_acks <- (env.Message.sender, env.Message.signature) :: t.start_acks;
      if List.length t.start_acks >= live_f t - 1 && not t.sent_tuples then begin
        t.sent_tuples <- true;
        let body = Message.Start_tuples { c; tuples = t.start_acks } in
        let env' = make_signed t body in
        multicast t ~dsts:(others t) env';
        t.have_tuples <- true;
        try_finish_install t
      end
    end
  end

and handle_start_tuples t (env : Message.envelope) ~c ~tuples =
  ignore env;
  if t.installing && Int.equal c t.coord && not t.have_tuples then begin
    match t.start_env with
    | None -> () (* Start not here yet; tuples will be re-derived from stash *)
    | Some start ->
      let start_digest = start_digest_of t start in
      let body_bytes =
        Message.encode_body (Message.Start_ack { c; start_digest })
      in
      let members = Config.candidate_members t.config c in
      let valid =
        List.filter
          (fun (signer, signature) ->
            (not (List.mem signer members))
            && t.ctx.Context.verify ~signer ~msg:body_bytes ~signature)
          tuples
      in
      let distinct = List.sort_uniq Int.compare (List.map fst valid) in
      if List.length distinct >= live_f t - 1 then begin
        t.have_tuples <- true;
        try_finish_install t
      end
  end

and try_finish_install t =
  if t.installing then begin
    (* [t.start_env] only ever stores a Start (handle_start is the sole
       writer), so destructuring here keeps finish_install total. *)
    match t.start_env with
    | Some
        ({ Message.body = Message.Start { c; start_o; anchor; new_back_log }; _ }
         as start_env)
      when live_f t <= 1 || t.have_tuples ->
      finish_install t start_env ~c ~start_o ~anchor ~new_back_log
    | Some _ | None -> ()
  end

and finish_install t (start_env : Message.envelope) ~c ~start_o ~anchor ~new_back_log =
  t.installing <- false;
  (* First optimisation (Section 4.3): every passed-over pair turns dumb;
     n shrinks by 2 and f by 1 per pair. *)
  if t.config.Config.dumb_optimization then
    t.dumbed_pairs <- Int_set.filter (fun r -> r < t.coord) t.failed_pairs;
  (* Adopt the NewBackLog. *)
  t.start_covers <- List.filter (fun (i : Message.order_info) -> i.Message.o > t.max_committed) new_back_log;
  List.iter
    (fun (info : Message.order_info) ->
      (* Below the stable checkpoint the log is truncated and settled; the
         back-log must not resurrect those sequences. *)
      if info.Message.o > Recovery.stable_seq t.rcv then begin
        let st = get_order t info.Message.o in
        if not st.committed then begin
          st.have_order <- true;
          st.digest <- info.Message.digest;
          st.keys <- info.Message.keys;
          st.vote_c <- c;
          if info.Message.keys = [] then st.null <- true;
          List.iter
            (fun k -> t.ordered_keys <- Key_set.add k t.ordered_keys)
            info.Message.keys
        end
      end)
    new_back_log;
  if anchor > t.anchor_seen then t.anchor_seen <- anchor;
  (* The Start itself is an order at start_o (step IN5). *)
  let start_digest = start_digest_of t start_env in
  let st = get_order t start_o in
  if not st.committed then begin
    st.have_order <- true;
    st.digest <- start_digest;
    st.keys <- [];
    st.null <- true;
    st.vote_c <- c;
    add_vote st ~digest:start_digest ~source:start_env.Message.sender
      ~signature:start_env.Message.signature;
    (match start_env.Message.endorsement with
    | Some (who, s) -> add_vote st ~digest:start_digest ~source:who ~signature:s
    | None -> ())
  end;
  (* New coordinator roles. *)
  if Int.equal (id t) (Config.primary_of_pair t.config t.coord) && not (is_dumb t) then begin
    t.next_seq <- start_o + 1;
    arm_batch_timer t
  end;
  if
    Config.candidate_is_pair t.config t.coord
    && Int.equal (id t) (Config.shadow_of_pair t.config t.coord)
  then begin
    t.expected_seq <- start_o + 1;
    t.last_progress <- t.ctx.Context.now ()
  end;
  t.view_ordered_keys <- Key_set.empty;
  (* Stashed endorsements are from the superseded era; anything still
     legitimate is covered by the install's back-log. *)
  t.stashed_endorsements <- [];
  (match t.install_span with
  | Some r ->
    t.install_span <- None;
    span_close t Context.Install_phase r
  | None -> ());
  (match t.failover_span with
  | Some r ->
    t.failover_span <- None;
    span_close t Context.Failover_phase r
  | None -> ());
  t.ctx.Context.emit (Context.Coordinator_installed { rank = t.coord });
  (* An anchor beyond our delivery point proves the cluster committed
     sequences we will never see retransmitted (the rememberers may have
     truncated them behind a stable checkpoint): catch up through state
     transfer rather than stalling delivery for the whole new era. *)
  if t.delivered < anchor then request_recovery t;
  (* Ack the Start through the normal part. *)
  send_ack t st;
  try_commit t st;
  (* Replay messages that raced ahead of this install. *)
  let stash = List.rev t.stash_future in
  t.stash_future <- [];
  List.iter (fun (src, env) -> on_message t ~src env) stash

(* ------------------------------------------------------ normal batching *)

and arm_batch_timer t =
  let h =
    t.ctx.Context.set_timer ~delay:t.config.Config.batching_interval (fun () ->
        batch_tick t)
  in
  t.batch_timer <- Some h

and batch_tick t =
  if i_am_coordinator_primary t && pair_active_or_unpaired t then begin
    let pool =
      Key_map.filter (fun k _ -> not (Key_set.mem k t.ordered_keys)) t.pending
    in
    if not (Key_map.is_empty pool) then issue_batch t pool;
    arm_batch_timer t
  end

and pair_active_or_unpaired t =
  (* The unpaired candidate has no pair to lose; pairs batch only while the
     collaboration is alive. *)
  match t.pair_rank with None -> true | Some _ -> t.pair_active

and issue_batch t pool =
  let requests =
    Batch.take_oldest ~limit:t.config.Config.batch_size_limit ~pool ~arrival:t.arrival
  in
  let batch = Batch.make requests in
  let o = t.next_seq in
  t.next_seq <- o + 1;
  t.ctx.Context.digest_charge (Batch.encoded_size batch);
  let digest = Batch.digest t.config.Config.digest batch in
  let digest =
    match t.fault with
    | Fault.Corrupt_digest_at at when Int.equal at o ->
      (* Value-domain fault: lie about the batch's contents. *)
      let b = Bytes.of_string digest in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      Bytes.to_string b
    | _ -> digest
  in
  let keys = Batch.keys batch in
  List.iter (fun k -> t.ordered_keys <- Key_set.add k t.ordered_keys) keys;
  let info = { Message.o; digest; keys } in
  t.ctx.Context.emit
    (Context.Batched
       { seq = o; requests = Batch.request_count batch; bytes = Batch.encoded_size batch });
  open_batch_span t (get_order t o);
  let body = Message.Order { c = t.coord; info } in
  let env = make_signed t body in
  if coordinator_is_pair t then begin
    match t.fault with
    | Fault.Equivocate_at at when Int.equal at o ->
      (* Equivocation: two conflicting orders for the same sequence number.
         The shadow is asked to endorse a corrupted digest — a value-domain
         failure it must detect and fail-signal — while the rest of the
         cohort receives the honest digest without the pair's double
         signature, which they reject as unendorsed.  Either way no honest
         receiver can assemble a doubly-signed order for this [o]. *)
      let b = Bytes.of_string digest in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      let conflicting = { info with Message.digest = Bytes.to_string b } in
      let conflicting_env =
        make_signed t (Message.Order { c = t.coord; info = conflicting })
      in
      let shadow = Config.shadow_of_pair t.config t.coord in
      send t ~dst:shadow conflicting_env;
      multicast t ~dsts:(List.filter (fun p -> not (Int.equal p shadow)) (others t)) env
    | _ ->
      (* Phase 1: 1-to-1 to the shadow for endorsement. *)
      open_endorse_span t (get_order t o);
      send t ~dst:(Config.shadow_of_pair t.config t.coord) env;
      arm_endorsement_watch t o ~level:0
  end
  else begin
    (* Unpaired coordinator: singly-signed order straight to everyone. *)
    multicast t ~dsts:(others t) env;
    accept_order t env ~c:t.coord ~info
  end

and arm_endorsement_watch t o ~level =
  let watch =
    t.ctx.Context.set_timer ~kind:Context.Watchdog ~delay:(budget_at t ~level)
      (fun () -> endorsement_overdue t o ~level)
  in
  t.endorsement_watches <- (o, watch) :: t.endorsement_watches

and endorsement_overdue t o ~level =
  t.endorsement_watches <- List.remove_assoc o t.endorsement_watches;
  let endorsed =
    match Hashtbl.find_opt t.orders o with Some st -> st.have_order | None -> false
  in
  if not endorsed then
    if can_back_off t ~level then arm_endorsement_watch t o ~level:(level + 1)
    else
      (* Time-domain failure of the shadow (assumption 3(a)(i): the estimate
         is accurate, so lateness means failure; in adaptive mode the budget
         already walked to the hard cap first). *)
      emit_fail_signal t ~value_domain:false

(* ------------------------------------- shadow checking and endorsement *)

and shadow_validate_order t (env : Message.envelope) ~(info : Message.order_info) =
  (* Returns [`Valid], [`Defer] (requests not all here yet) or [`Invalid]. *)
  if not (Int.equal info.Message.o t.expected_seq) then
    if info.Message.o < t.expected_seq then `Duplicate
    else
      (* A gap is not evidence: the network is non-FIFO, so a later order can
         overtake an earlier one we are still deferring on.  Stash it until
         the gap fills. *)
      `Defer
  else if
    (* Double-ordering is only evidence of misbehaviour within the current
       coordinator era: a primary installed after a fail-over may not know
       which keys earlier coordinators already ordered, and re-proposing
       them is benign now that delivery is at-most-once. *)
    List.exists (fun k -> Key_set.mem k t.view_ordered_keys) info.Message.keys
  then `Invalid
  else if info.Message.keys = [] then `Invalid
  else begin
    let lookup k =
      match Key_map.find_opt k t.pending with
      | Some r -> Some r
      | None -> Key_map.find_opt k t.executed
    in
    let requests = List.filter_map lookup info.Message.keys in
    if not (Int.equal (List.length requests) (List.length info.Message.keys)) then `Defer
    else begin
      let batch = Batch.make requests in
      t.ctx.Context.digest_charge (Batch.encoded_size batch);
      let expected = Batch.digest t.config.Config.digest batch in
      ignore env;
      if String.equal expected info.Message.digest then `Valid else `Invalid
    end
  end

and shadow_handle_order t (env : Message.envelope) ~(info : Message.order_info) =
  match t.fault with
  | Fault.Drop_endorsements -> ()
  | _ -> begin
    match shadow_validate_order t env ~info with
    | `Duplicate -> ()
    | `Defer ->
      let st = get_order t info.Message.o in
      open_batch_span t st;
      open_endorse_span t st;
      t.stashed_endorsements <- (t.ctx.Context.now (), env, info) :: t.stashed_endorsements;
      retry_stashed_later t
    | `Invalid -> begin
      match t.fault with
      | Fault.Endorse_corrupt_at at when Int.equal at info.Message.o ->
        shadow_endorse t env ~info
      | _ -> emit_fail_signal t ~value_domain:true
    end
    | `Valid ->
      let st = get_order t info.Message.o in
      open_batch_span t st;
      open_endorse_span t st;
      shadow_endorse t env ~info
  end

and shadow_endorse t (env : Message.envelope) ~(info : Message.order_info) =
  t.expected_seq <- info.Message.o + 1;
  t.last_progress <- t.ctx.Context.now ();
  t.shadow_watch_level <- 0;
  List.iter
    (fun k ->
      t.ordered_keys <- Key_set.add k t.ordered_keys;
      t.view_ordered_keys <- Key_set.add k t.view_ordered_keys)
    info.Message.keys;
  let endorsed = endorse t env in
  (* Phase 2: 2-to-n — the shadow multicasts the endorsed order... *)
  multicast t ~dsts:(others t) endorsed;
  accept_order t endorsed ~c:t.coord ~info;
  rearm_shadow_watch t

and retry_stashed_later t =
  (* Requests the primary referenced should arrive shortly (clients
     broadcast); recheck after the pair delay estimate.  A still-unresolvable
     order is a timeout, not proof of misbehaviour — a slow wire is
     indistinguishable from an inventing primary. *)
  if not t.stash_retry_armed then begin
    t.stash_retry_armed <- true;
    ignore
      (t.ctx.Context.set_timer ~kind:Context.Watchdog ~delay:(pair_estimate t)
         (fun () ->
           t.stash_retry_armed <- false;
           retry_stashed t))
  end

and retry_stashed t =
  let stashed = t.stashed_endorsements in
  t.stashed_endorsements <- [];
  (* Ascending sequence order so that endorsing a gap-filler immediately
     unblocks the overtaking orders stashed behind it. *)
  let stashed =
    List.sort
      (fun (_, _, (a : Message.order_info)) (_, _, (b : Message.order_info)) ->
        Int.compare a.Message.o b.Message.o)
      stashed
  in
  List.iter
    (fun (since, env, (info : Message.order_info)) ->
      match shadow_validate_order t env ~info with
      | `Valid -> shadow_endorse t env ~info
      | `Duplicate -> ()
      | `Invalid -> emit_fail_signal t ~value_domain:true
      | `Defer ->
        let age = Simtime.diff (t.ctx.Context.now ()) since in
        (* In adaptive mode the wire may legitimately hold a gap open for as
           long as the hard cap — only a gap older than that is evidence. *)
        let limit = if adaptive t then timer_cap t else pair_estimate t in
        if Simtime.compare age limit >= 0 then
          (* Timeout, not proof: the referenced requests (or the gap
             predecessor) never showed up.  Time-domain. *)
          emit_fail_signal t ~value_domain:false
        else begin
          t.stashed_endorsements <- (since, env, info) :: t.stashed_endorsements;
          if adaptive t then retry_stashed_later t
        end)
    stashed

(* Shadow watches the primary: every known request must be ordered within
   batching_interval + pair_delay_estimate of its arrival (time-domain check,
   Section 3.1 (ii)). *)
and rearm_shadow_watch t =
  (match t.watch_timer with Some h -> h.Context.cancel () | None -> ());
  t.watch_timer <- None;
  if i_am_coordinator_shadow t && t.pair_active then begin
    let unordered =
      Key_map.filter (fun k _ -> not (Key_set.mem k t.ordered_keys)) t.arrival
    in
    match Key_map.min_binding_opt unordered with
    | None -> ()
    | Some (_, oldest) ->
      let budget =
        Simtime.add t.config.Config.batching_interval
          (budget_at t ~level:t.shadow_watch_level)
      in
      (* The primary is timely as long as it keeps ordering: it must produce
         an endorsable order within [budget] of max(last endorsement, oldest
         unordered arrival) — per-request age alone would falsely accuse a
         merely backlogged primary. *)
      let deadline = Simtime.add (Simtime.max oldest t.last_progress) budget in
      let now = t.ctx.Context.now () in
      let delay =
        if Simtime.compare deadline now <= 0 then Simtime.ns 1
        else Simtime.diff deadline now
      in
      let h =
        t.ctx.Context.set_timer ~kind:Context.Watchdog ~delay (fun () ->
            shadow_watch_fired t)
      in
      t.watch_timer <- Some h
  end

and shadow_watch_fired t =
  t.watch_timer <- None;
  if i_am_coordinator_shadow t && t.pair_active then begin
    let budget =
      Simtime.add t.config.Config.batching_interval
        (budget_at t ~level:t.shadow_watch_level)
    in
    let now = t.ctx.Context.now () in
    let stalled =
      Simtime.compare (Simtime.add t.last_progress budget) now <= 0
      && Key_map.exists
           (fun k since ->
             (not (Key_set.mem k t.ordered_keys))
             && Simtime.compare (Simtime.add since budget) now <= 0)
           t.arrival
    in
    if not stalled then rearm_shadow_watch t
    else if can_back_off t ~level:t.shadow_watch_level then begin
      t.shadow_watch_level <- t.shadow_watch_level + 1;
      rearm_shadow_watch t
    end
    else emit_fail_signal t ~value_domain:false
  end

(* ------------------------------------------------------------ heartbeat *)

and arm_heartbeat t =
  match (t.pair_rank, t.counterpart) with
  | Some rank, Some cp when t.pair_active ->
    let h =
      t.ctx.Context.set_timer ~kind:Context.Watchdog
        ~delay:t.config.Config.heartbeat_interval (fun () -> heartbeat_tick t rank cp)
    in
    t.heartbeat_timer <- Some h
  | _ -> ()

and heartbeat_tick t rank cp =
  if t.pair_active then begin
    t.beat <- t.beat + 1;
    let env = make_signed t (Message.Heartbeat { pair = rank; beat = t.beat }) in
    send t ~dst:cp env;
    if adaptive t then send_probe t cp;
    let silence = Simtime.diff (t.ctx.Context.now ()) t.last_heard in
    let tolerance =
      Simtime.add
        (Simtime.add t.config.Config.heartbeat_interval t.config.Config.heartbeat_interval)
        (budget_at t ~level:t.hb_level)
    in
    if Simtime.compare silence tolerance <= 0 then begin
      t.hb_level <- 0;
      arm_heartbeat t
    end
    else if can_back_off t ~level:t.hb_level then begin
      t.hb_level <- t.hb_level + 1;
      arm_heartbeat t
    end
    else emit_fail_signal t ~value_domain:false
  end

(* -------------------------------------------------------------- inbound *)

and on_message t ~src (env : Message.envelope) =
  (match t.counterpart with
  | Some cp when Int.equal cp src -> t.last_heard <- t.ctx.Context.now ()
  | Some _ | None -> ());
  match env.Message.body with
  | Message.Heartbeat _ -> () (* liveness note above is all they carry *)
  | Message.Fail_signal { pair } ->
    if
      pair >= 1
      && pair <= Config.pair_count t.config
      && (not (Int_set.mem pair t.failed_pairs))
      && fail_signal_authentic t ~pair env
    then begin
      (* Echo to the first signatory in case the second maliciously omitted
         it (Section 3.2). *)
      send t ~dst:env.Message.sender env;
      note_pair_failed t pair
    end
  | Message.Order { c; info } ->
    (* Sequence numbers at or below the stable checkpoint are settled and
       truncated — stragglers must not resurrect them in the log. *)
    if info.Message.o <= Recovery.stable_seq t.rcv then ()
    else if Int.equal c t.coord && not t.installing then begin
      if env.Message.endorsement = None && coordinator_is_pair t then begin
        (* Phase-1 unendorsed order: only meaningful at the shadow. *)
        if
          i_am_coordinator_shadow t && t.pair_active
          && Int.equal src (Config.primary_of_pair t.config t.coord)
          && Int.equal env.Message.sender src
          && authentic t env
        then shadow_handle_order t env ~info
      end
      else if valid_coordinator_message t ~rank:c env && authentic t env then begin
        (* The primary forwards the endorsed order to everyone (phase 2). *)
        if
          i_am_coordinator_primary t
          && Int.equal env.Message.sender (id t)
          && not (Int.equal src (id t))
        then begin
          t.endorsement_watches <-
            (match List.assoc_opt info.Message.o t.endorsement_watches with
            | Some h ->
              h.Context.cancel ();
              List.remove_assoc info.Message.o t.endorsement_watches
            | None -> t.endorsement_watches);
          multicast t ~dsts:(others t) env
        end;
        accept_order t env ~c ~info
      end
    end
    else if c > t.coord || t.installing then
      t.stash_future <- (src, env) :: t.stash_future
    else if
      (* Catch-up: a late order from a superseded coordinator.  Sequences at
         or below an installed Start's anchor are proven committed, and under
         the pair fault model the valid coordinator message for a given
         sequence is unique, so adopting its content is safe — this is how a
         replica partitioned across the install recovers the orders whose
         acks it already holds.  Fresh sequences from a deposed coordinator
         (above the anchor, where the install may have decided differently)
         stay dropped. *)
      info.Message.o <= t.anchor_seen
      && valid_coordinator_message t ~rank:c env
      && authentic t env
    then accept_order t env ~c ~info
  | Message.Ack { c; o; digest } ->
    ignore c;
    if o > Recovery.stable_seq t.rcv && authentic t env then begin
      let st = get_order t o in
      add_vote st ~digest ~source:env.Message.sender ~signature:env.Message.signature;
      if st.have_order && String.equal st.digest digest then try_commit t st
    end
  | Message.Back_log
      { c; failed_pair; max_committed; committed_digest; proof_c; proof; stable; uncommitted }
    ->
    if authentic t env then begin
      if Int.equal c t.coord && t.installing then begin
        let rec_ =
          {
            bl_failed_pair = failed_pair;
            bl_max_committed = max_committed;
            bl_committed_digest = committed_digest;
            bl_proof_c = proof_c;
            bl_proof = proof;
            bl_stable = stable;
            bl_uncommitted = uncommitted;
          }
        in
        let rec_ = validate_backlog t rec_ in
        store_backlog t ~src:env.Message.sender rec_
      end
      else if c > t.coord then t.stash_future <- (src, env) :: t.stash_future
    end
  | Message.Start { c; start_o; anchor; new_back_log } ->
    if authentic t env then begin
      if Int.equal c t.coord && t.installing then begin
        if env.Message.endorsement = None && Config.candidate_is_pair t.config c then begin
          (* 1-signed proposal: only the shadow of the new pair endorses. *)
          if
            Int.equal (id t) (Config.shadow_of_pair t.config c)
            && Int.equal env.Message.sender (Config.primary_of_pair t.config c)
          then handle_start_proposal t env ~start_o ~anchor ~new_back_log
        end
        else if valid_coordinator_message t ~rank:c env then begin
          (* The new primary also forwards the endorsed Start outward. *)
          if Int.equal (id t) (Config.primary_of_pair t.config c) && Int.equal env.Message.sender (id t) && not (Int.equal src (id t))
          then multicast t ~dsts:(others t) env;
          handle_start t env ~c
        end
      end
      else if c > t.coord then t.stash_future <- (src, env) :: t.stash_future
    end
  | Message.Start_ack { c; start_digest } ->
    if authentic t env then handle_start_ack t env ~c ~start_digest
  | Message.Start_tuples { c; tuples } ->
    if authentic t env then begin
      if Int.equal c t.coord && t.installing then handle_start_tuples t env ~c ~tuples
      else if c > t.coord then t.stash_future <- (src, env) :: t.stash_future
    end
  | Message.Checkpoint { seq; digest } ->
    if
      t.config.Config.checkpoint_interval > 0
      && seq > Recovery.stable_seq t.rcv
      && authentic t env
    then begin
      (match env.Message.endorsement with
      | None -> begin
        (* Either a phase-1 proposal addressed to this pair's shadow, or the
           unpaired candidate's complete singleton certificate. *)
        match (t.pair_rank, t.counterpart) with
        | Some r, Some cp
          when Int.equal env.Message.sender cp
               && Int.equal cp (Config.primary_of_pair t.config r) ->
          shadow_handle_checkpoint t env ~seq ~digest
        | _ ->
          if ckpt_pair_ok t ~primary:env.Message.sender ~endorser:None then
            ckpt_adopt_cert t (cert_of_ckpt_env env ~seq ~digest)
      end
      | Some (who, _) ->
        if ckpt_pair_ok t ~primary:env.Message.sender ~endorser:(Some who) then
          ckpt_adopt_cert t (cert_of_ckpt_env env ~seq ~digest));
      (* A checkpoint a full interval ahead of our delivery point means we
         missed traffic that has since been truncated at our peers: catch up
         through state transfer rather than waiting for retransmissions that
         will never come. *)
      if seq > t.delivered + t.config.Config.checkpoint_interval then request_recovery t
    end
  | Message.State_request { have } -> if authentic t env then serve_state_request t ~src ~have
  | Message.State_response { cert; image; entries } ->
    if authentic t env then handle_state_response t ~src ~cert ~image ~entries
  | Message.Probe { nonce; at } ->
    (* Echo the sender's timestamp back; replies are liveness-only input so
       they need no verification beyond the estimator's nonce filter. *)
    if adaptive t then send t ~dst:src (make_signed t (Message.Probe_reply { nonce; at }))
  | Message.Probe_reply { nonce; at } -> note_probe_reply t ~src ~nonce ~at
  | Message.View_change _ | Message.New_view _ | Message.Unwilling _
  | Message.Pre_prepare _ | Message.Prepare _ | Message.Commit _
  | Message.Bft_view_change _ | Message.Bft_new_view _ ->
    () (* other protocols' traffic: not ours *)

and fail_signal_authentic t ~pair (env : Message.envelope) =
  let members = Config.candidate_members t.config pair in
  List.length members = 2
  && List.mem env.Message.sender members
  && begin
       match env.Message.endorsement with
       | Some (who, _) -> List.mem who members && not (Int.equal who env.Message.sender)
       | None -> false
     end
  && authentic t env

(* New-coordinator-side sanity check of a backlog's commitment proof: at
   least f+1 matching ack signatures — or, falling back, the sender's
   stable checkpoint certificate, which proves commitment through its
   sequence number even when the volatile ack proof died with a crash.
   An unprovable remainder is clamped off the claim; without the durable
   fallback a blackout restart would clamp every recovered claim to zero
   and let the anchor regress below delivered history.  Only pair-c
   members pay these verifications. *)
and validate_backlog t rec_ =
  let am_new_member =
    List.mem (id t) (Config.candidate_members t.config t.coord)
  in
  if (not am_new_member) || rec_.bl_max_committed = 0 then rec_
  else begin
    let body_bytes =
      Message.encode_body
        (Message.Ack
           {
             c = rec_.bl_proof_c;
             o = rec_.bl_max_committed;
             digest = rec_.bl_committed_digest;
           })
    in
    let valid =
      List.filter
        (fun (signer, signature) ->
          t.ctx.Context.verify ~signer ~msg:body_bytes ~signature)
        rec_.bl_proof
      |> List.map fst |> List.sort_uniq Int.compare
    in
    if List.length valid >= t.config.Config.f + 1 then rec_
    else begin
      let cert_seq =
        match rec_.bl_stable with
        | Some c
          when Recovery.verify_cert
                 ~verify:(fun ~signer ~msg ~signature ->
                   t.ctx.Context.verify_acc ~signer ~msg ~signature)
                 ~scheme:(ckpt_scheme t) c ->
          c.Checkpoint.cp_seq
        | Some _ | None -> 0
      in
      {
        rec_ with
        bl_max_committed = min rec_.bl_max_committed cert_seq;
        bl_committed_digest = "";
        bl_proof = [];
      }
    end
  end

(* ------------------------------------------------------------- requests *)

let on_request t (req : Request.t) =
  let key = req.Request.key in
  if (not (Key_set.mem key t.ordered_keys)) && not (Key_map.mem key t.pending) then begin
    t.pending <- Key_map.add key req t.pending;
    t.arrival <- Key_map.add key (t.ctx.Context.now ()) t.arrival;
    (* A newly known request lets stashed endorsements re-validate and
       (re)arms the shadow's timeliness watch. *)
    if t.stashed_endorsements <> [] then retry_stashed t;
    if i_am_coordinator_shadow t && t.watch_timer = None then rearm_shadow_watch t;
    advance_delivery t
  end
  else if Key_map.mem key t.pending then ()
  else
    (* Already ordered; keep the body so delivery can complete. *)
    t.pending <- Key_map.add key req t.pending

let start t =
  if Option.is_some t.pair_rank then arm_heartbeat t;
  if i_am_coordinator_primary t then arm_batch_timer t;
  match t.fault with
  | Fault.Spurious_fail_signal_at at when Option.is_some t.pair_rank ->
    (* Fail-signal abuse: accuse the innocent counterpart at the given
       instant (processes start at simulated time zero, so the instant and
       the timer delay coincide). *)
    ignore
      (t.ctx.Context.set_timer ~delay:at (fun () ->
           emit_fail_signal t ~value_domain:false))
  | _ -> ()

let create ~ctx ~config ?(fault = Fault.Honest) ?counterpart_fail_signal () =
  let pid = ctx.Context.id in
  let pair_rank = Config.pair_rank_of config pid in
  (match (pair_rank, counterpart_fail_signal) with
  | Some _, None ->
    raise (Config.Invalid_config "Sc.create: paired process needs counterpart_fail_signal")
  | None, Some _ ->
    raise (Config.Invalid_config "Sc.create: unpaired process cannot hold a fail-signal")
  | _ -> ());
  {
    ctx;
    config;
    fault;
    counterpart_fail_signal;
    pair_rank;
    counterpart = Config.counterpart config pid;
    all_ids = Config.all_processes config;
    coord = 1;
    failed_pairs = Int_set.empty;
    dumbed_pairs = Int_set.empty;
    installing = false;
    pending = Key_map.empty;
    arrival = Key_map.empty;
    ordered_keys = Key_set.empty;
    delivered_keys = Key_set.empty;
    view_ordered_keys = Key_set.empty;
    executed = Key_map.empty;
    orders = Hashtbl.create 64;
    max_committed = 0;
    committed_digest = "";
    committed_proof_c = 0;
    committed_proof = [];
    delivered = 0;
    next_seq = 1;
    batch_timer = None;
    endorsement_watches = [];
    expected_seq = 1;
    last_progress = Simtime.zero;
    stashed_endorsements = [];
    watch_timer = None;
    pair_active = Option.is_some pair_rank;
    fail_signalled = false;
    last_heard = Simtime.zero;
    heartbeat_timer = None;
    beat = 0;
    backlogs_by_c = Hashtbl.create 4;
    start_env = None;
    start_acks = [];
    have_tuples = false;
    sent_tuples = false;
    start_sent = false;
    start_covers = [];
    anchor_seen = 0;
    stash_future = [];
    failover_span = None;
    install_span = None;
    rcv = Recovery.create ();
    recent_delivered = [];
    ckpt_proposals = [];
    ckpt_certs = [];
    fetch_timer = None;
    ests = Array.make (Config.process_count config) None;
    probe_accepted = Array.make (Config.process_count config) 0;
    probe_nonce = 0;
    fetch_backoff = 0;
    shadow_watch_level = 0;
    hb_level = 0;
    stash_retry_armed = false;
  }
