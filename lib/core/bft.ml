module Simtime = Sof_sim.Simtime
module Request = Sof_smr.Request
module Key_map = Request.Key_map
module Key_set = Request.Key_set
module Int_set = Set.Make (Int)

type config = {
  f : int;
  batching_interval : Simtime.t;
  batch_size_limit : int;
  digest : Sof_crypto.Digest_alg.t;
  view_change_timeout : Simtime.t;
}

let make_config ?(batching_interval = Simtime.ms 100) ?(batch_size_limit = 1024)
    ?(digest = Sof_crypto.Digest_alg.MD5) ?(view_change_timeout = Simtime.sec 2)
    ~f () =
  if f < 1 then raise (Config.Invalid_config "Bft.make_config: f must be at least 1");
  { f; batching_interval; batch_size_limit; digest; view_change_timeout }

let process_count config = (3 * config.f) + 1

type order_state = {
  o : int;
  mutable digest : string;
  mutable keys : Request.key list;
  mutable pre_prepared : bool;  (* authentic pre-prepare stored *)
  mutable view_of : int;
  mutable prepares : Int_set.t;
  mutable commits : Int_set.t;
  mutable sent_prepare : bool;
  mutable sent_commit : bool;
  mutable committed : bool;
  (* trace spans currently open at this process for this order *)
  mutable sp_batch : bool;
  mutable sp_preprep : bool;
  mutable sp_prepare : bool;
  mutable sp_commit : bool;
}

type t = {
  ctx : Context.t;
  config : config;
  fault : Fault.t;
  all_ids : int list;
  mutable view : int;
  mutable pending : Request.t Key_map.t;
  mutable arrival : Simtime.t Key_map.t;
  mutable ordered_keys : Key_set.t;
  mutable delivered_keys : Key_set.t;
  orders : (int, order_state) Hashtbl.t;
  mutable max_committed : int;
  mutable delivered : int;
  mutable next_seq : int;
  mutable batch_timer : Context.timer option;
  mutable vc_timer : Context.timer option;
  mutable last_progress : Simtime.t;
  mutable view_changes : (int, Int_set.t ref * Message.order_info list ref) Hashtbl.t;
  mutable changing_view : bool;
  mutable vc_span : int option;  (* open view-change trace span *)
}

let id t = t.ctx.Context.id
let view t = t.view
let n t = process_count t.config
let primary t = t.view mod n t
let i_am_primary t = Int.equal (id t) (primary t)
let max_committed t = t.max_committed
let delivered_seq t = t.delivered

let others t = List.filter (fun p -> not (Int.equal p (id t))) t.all_ids

let make_signed t body =
  let payload = Message.encode_body body in
  {
    Message.sender = id t;
    body;
    signature = t.ctx.Context.sign payload;
    endorsement = None;
  }

let authentic t (env : Message.envelope) =
  env.Message.endorsement = None
  && t.ctx.Context.verify ~signer:env.Message.sender
       ~msg:(Message.encode_body env.Message.body)
       ~signature:env.Message.signature

let can_transmit t = not (Fault.is_mute t.fault ~now:(t.ctx.Context.now ()))

let multicast t ~dsts env = if can_transmit t then t.ctx.Context.multicast ~dsts env

let get_order t o =
  match Hashtbl.find_opt t.orders o with
  | Some st -> st
  | None ->
    let st =
      {
        o;
        digest = "";
        keys = [];
        pre_prepared = false;
        view_of = 0;
        prepares = Int_set.empty;
        commits = Int_set.empty;
        sent_prepare = false;
        sent_commit = false;
        committed = false;
        sp_batch = false;
        sp_preprep = false;
        sp_prepare = false;
        sp_commit = false;
      }
    in
    Hashtbl.replace t.orders o st;
    st

(* Trace spans: [Context.emit] costs no simulated CPU, each sp_* flag means
   "open at this process", and closes only fire when the flag is set, so
   spans balance whenever the order commits locally. *)

let span_open t phase seq = t.ctx.Context.emit (Context.Span_open { phase; seq })
let span_close t phase seq = t.ctx.Context.emit (Context.Span_close { phase; seq })

let rec advance_delivery t =
  match Hashtbl.find_opt t.orders (t.delivered + 1) with
  | None -> ()
  | Some st when not st.committed -> ()
  | Some st ->
    if st.keys = [] then begin
      t.delivered <- st.o;
      let batch = Batch.make [] in
      t.ctx.Context.deliver ~seq:st.o batch;
      t.ctx.Context.emit (Context.Delivered { seq = st.o; batch });
      advance_delivery t
    end
    else begin
      (* At-most-once: a primary elected after a view change may re-order
         requests an earlier view already committed.  Honest processes agree
         on the committed prefix, so they prune the same already-delivered
         keys and execute identical sub-batches. *)
      let fresh =
        List.filter (fun k -> not (Key_set.mem k t.delivered_keys)) st.keys
      in
      let requests = List.filter_map (fun k -> Key_map.find_opt k t.pending) fresh in
      if Int.equal (List.length requests) (List.length fresh) then begin
        t.delivered <- st.o;
        List.iter
          (fun k ->
            t.delivered_keys <- Key_set.add k t.delivered_keys;
            t.pending <- Key_map.remove k t.pending;
            t.arrival <- Key_map.remove k t.arrival)
          st.keys;
        let batch = Batch.make requests in
        t.ctx.Context.deliver ~seq:st.o batch;
        t.ctx.Context.emit (Context.Delivered { seq = st.o; batch });
        advance_delivery t
      end
    end

let try_commit_point t st =
  if st.pre_prepared && (not st.committed) && Int_set.cardinal st.commits >= (2 * t.config.f) + 1
  then begin
    if st.sp_preprep then begin
      st.sp_preprep <- false;
      span_close t Context.Pre_prepare_phase st.o
    end;
    if st.sp_prepare then begin
      st.sp_prepare <- false;
      span_close t Context.Prepare_phase st.o
    end;
    if st.sp_commit then begin
      st.sp_commit <- false;
      span_close t Context.Commit_phase st.o
    end;
    if st.sp_batch then begin
      st.sp_batch <- false;
      span_close t Context.Batch_phase st.o
    end;
    st.committed <- true;
    t.last_progress <- t.ctx.Context.now ();
    if st.o > t.max_committed then t.max_committed <- st.o;
    t.ctx.Context.emit
      (Context.Committed { seq = st.o; digest = st.digest; keys = st.keys });
    advance_delivery t
  end

let try_prepared_point t st =
  if
    st.pre_prepared && st.sent_prepare && (not st.sent_commit)
    && Int_set.cardinal st.prepares >= 2 * t.config.f
  then begin
    st.sent_commit <- true;
    if st.sp_prepare then begin
      st.sp_prepare <- false;
      span_close t Context.Prepare_phase st.o
    end;
    if st.sp_batch && not st.sp_commit then begin
      st.sp_commit <- true;
      span_open t Context.Commit_phase st.o
    end;
    let body = Message.Commit { v = st.view_of; o = st.o; digest = st.digest } in
    let env = make_signed t body in
    multicast t ~dsts:t.all_ids env
  end

let send_prepare t st =
  if not st.sent_prepare then begin
    st.sent_prepare <- true;
    if st.sp_preprep then begin
      st.sp_preprep <- false;
      span_close t Context.Pre_prepare_phase st.o
    end;
    if st.sp_batch && not st.sp_prepare then begin
      st.sp_prepare <- true;
      span_open t Context.Prepare_phase st.o
    end;
    let body = Message.Prepare { v = st.view_of; o = st.o; digest = st.digest } in
    let env = make_signed t body in
    multicast t ~dsts:t.all_ids env
  end

let accept_pre_prepare t ~(info : Message.order_info) ~v =
  let st = get_order t info.Message.o in
  if st.pre_prepared && (st.view_of > v || not (String.equal st.digest info.Message.digest)) then ()
  else begin
    if (not st.sp_batch) && not st.committed then begin
      st.sp_batch <- true;
      span_open t Context.Batch_phase st.o
    end;
    if st.sp_batch && (not st.sp_preprep) && not st.sent_prepare then begin
      st.sp_preprep <- true;
      span_open t Context.Pre_prepare_phase st.o
    end;
    st.pre_prepared <- true;
    st.view_of <- v;
    st.digest <- info.Message.digest;
    st.keys <- info.Message.keys;
    List.iter (fun k -> t.ordered_keys <- Key_set.add k t.ordered_keys) info.Message.keys;
    send_prepare t st;
    try_prepared_point t st;
    try_commit_point t st
  end

(* ----------------------------------------------------------- batching *)

let issue_pre_prepare t info =
  match t.fault with
  | Fault.Equivocate_at at when Int.equal at info.Message.o ->
    (* Equivocating primary: split the backups between two conflicting
       pre-prepare digests.  Neither half can assemble 2f matching prepares
       beyond the quorum-intersection bound, so agreement holds; progress at
       this sequence number waits for the view change. *)
    let b = Bytes.of_string info.Message.digest in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
    let alt = { info with Message.digest = Bytes.to_string b } in
    List.iteri
      (fun i dst ->
        let chosen = if i mod 2 = 0 then info else alt in
        multicast t ~dsts:[ dst ]
          (make_signed t (Message.Pre_prepare { v = t.view; info = chosen })))
      (others t);
    accept_pre_prepare t ~info ~v:t.view
  | _ ->
    let body = Message.Pre_prepare { v = t.view; info } in
    let env = make_signed t body in
    multicast t ~dsts:(others t) env;
    accept_pre_prepare t ~info ~v:t.view

let rec arm_batch_timer t =
  let h =
    t.ctx.Context.set_timer ~delay:t.config.batching_interval (fun () -> batch_tick t)
  in
  t.batch_timer <- Some h

and batch_tick t =
  if i_am_primary t && not t.changing_view then begin
    let pool = Key_map.filter (fun k _ -> not (Key_set.mem k t.ordered_keys)) t.pending in
    if not (Key_map.is_empty pool) then begin
      let requests = Batch.take_from_pool ~limit:t.config.batch_size_limit ~pool in
      let batch = Batch.make requests in
      let o = t.next_seq in
      t.next_seq <- o + 1;
      t.ctx.Context.digest_charge (Batch.encoded_size batch);
      let digest = Batch.digest t.config.digest batch in
      let digest =
        match t.fault with
        | Fault.Corrupt_digest_at at when Int.equal at o ->
          let b = Bytes.of_string digest in
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
          Bytes.to_string b
        | _ -> digest
      in
      let info = { Message.o; digest; keys = Batch.keys batch } in
      t.ctx.Context.emit
        (Context.Batched
           { seq = o; requests = Batch.request_count batch; bytes = Batch.encoded_size batch });
      List.iter (fun k -> t.ordered_keys <- Key_set.add k t.ordered_keys) info.Message.keys;
      issue_pre_prepare t info
    end;
    arm_batch_timer t
  end

(* ---------------------------------------------------------- view change *)

let prepared_set t =
  Hashtbl.fold
    (fun o st acc ->
      if
        st.pre_prepared && (not st.committed) && o > t.max_committed
        && Int_set.cardinal st.prepares >= 2 * t.config.f
      then { Message.o; digest = st.digest; keys = st.keys } :: acc
      else acc)
    t.orders []
  |> List.sort (fun a b -> Int.compare a.Message.o b.Message.o)

let rec arm_vc_timer t =
  let h =
    t.ctx.Context.set_timer ~delay:t.config.view_change_timeout (fun () ->
        vc_tick t)
  in
  t.vc_timer <- Some h

and vc_tick t =
  let budget = Simtime.add t.config.batching_interval t.config.view_change_timeout in
  let now = t.ctx.Context.now () in
  let stalled =
    Simtime.compare (Simtime.add t.last_progress budget) now <= 0
    && Key_map.exists
         (fun k since ->
           (not (Key_set.mem k t.ordered_keys))
           && Simtime.compare (Simtime.add since budget) now <= 0)
         t.arrival
  in
  if stalled && not t.changing_view then start_view_change t (t.view + 1);
  arm_vc_timer t

and start_view_change t v =
  if v > t.view then begin
    (match t.vc_span with
    | Some old -> span_close t Context.View_change_phase old
    | None -> ());
    t.vc_span <- Some v;
    span_open t Context.View_change_phase v;
    t.changing_view <- true;
    (match t.batch_timer with Some h -> h.Context.cancel () | None -> ());
    t.batch_timer <- None;
    let body =
      Message.Bft_view_change { v; prepared = prepared_set t }
    in
    let env = make_signed t body in
    multicast t ~dsts:t.all_ids env
  end

let rec handle_view_change t ~src:_ ~v ~prepared (env : Message.envelope) =
  if v > t.view || (Int.equal v t.view && t.changing_view) then begin
    let voters, infos =
      match Hashtbl.find_opt t.view_changes v with
      | Some (voters, infos) -> (voters, infos)
      | None ->
        let cell = (ref Int_set.empty, ref []) in
        Hashtbl.replace t.view_changes v cell;
        cell
    in
    if not (Int_set.mem env.Message.sender !voters) then begin
      voters := Int_set.add env.Message.sender !voters;
      infos := prepared @ !infos;
      (* Join the view change once f+1 replicas vouch for it (a correct
         replica must be among them). *)
      if Int.equal (Int_set.cardinal !voters) (t.config.f + 1) && not t.changing_view then
        start_view_change t v;
      if Int_set.cardinal !voters >= (2 * t.config.f) + 1 && Int.equal (v mod n t) (id t) then begin
        (* New primary: re-issue pre-prepares for every prepared order. *)
        let by_o = Hashtbl.create 16 in
        List.iter
          (fun (info : Message.order_info) ->
            if info.Message.o > t.max_committed then
              Hashtbl.replace by_o info.Message.o info)
          !infos;
        let pre_prepares =
          Hashtbl.fold (fun _ info acc -> info :: acc) by_o []
          |> List.sort (fun a b -> Int.compare a.Message.o b.Message.o)
        in
        let body = Message.Bft_new_view { v; pre_prepares } in
        let env' = make_signed t body in
        multicast t ~dsts:(others t) env';
        enter_view t v pre_prepares
      end
    end
  end

and enter_view t v pre_prepares =
  t.view <- v;
  t.changing_view <- false;
  (match t.vc_span with
  | Some old ->
    t.vc_span <- None;
    span_close t Context.View_change_phase old
  | None -> ());
  t.ctx.Context.emit (Context.View_installed { v });
  let top =
    List.fold_left
      (fun acc (i : Message.order_info) -> max acc i.Message.o)
      t.max_committed pre_prepares
  in
  let top = Hashtbl.fold (fun o _ acc -> max o acc) t.orders top in
  List.iter (fun (info : Message.order_info) -> accept_pre_prepare t ~info ~v) pre_prepares;
  if i_am_primary t then begin
    t.next_seq <- top + 1;
    arm_batch_timer t
  end;
  (* Give fresh grace to everything still pending. *)
  let now = t.ctx.Context.now () in
  t.arrival <- Key_map.map (fun _ -> now) t.arrival

let handle_new_view t ~v ~pre_prepares (env : Message.envelope) =
  if v >= t.view && Int.equal env.Message.sender (v mod n t) then enter_view t v pre_prepares

(* -------------------------------------------------------------- inbound *)

let on_request t (req : Request.t) =
  let key = req.Request.key in
  if not (Key_map.mem key t.pending) then begin
    t.pending <- Key_map.add key req t.pending;
    if not (Key_set.mem key t.ordered_keys) then
      t.arrival <- Key_map.add key (t.ctx.Context.now ()) t.arrival;
    advance_delivery t
  end

let on_message t ~src (env : Message.envelope) =
  ignore src;
  match env.Message.body with
  | Message.Pre_prepare { v; info } ->
    if Int.equal v t.view && (not t.changing_view) && Int.equal env.Message.sender (primary t)
       && authentic t env
    then accept_pre_prepare t ~info ~v
  | Message.Prepare { v; o; digest } ->
    if v <= t.view && authentic t env then begin
      let st = get_order t o in
      if (not st.pre_prepared) || String.equal st.digest digest then begin
        st.prepares <- Int_set.add env.Message.sender st.prepares;
        try_prepared_point t st;
        try_commit_point t st
      end
    end
  | Message.Commit { v; o; digest } ->
    if v <= t.view && authentic t env then begin
      let st = get_order t o in
      if (not st.pre_prepared) || String.equal st.digest digest then begin
        st.commits <- Int_set.add env.Message.sender st.commits;
        try_commit_point t st
      end
    end
  | Message.Bft_view_change { v; prepared } ->
    if authentic t env then handle_view_change t ~src ~v ~prepared env
  | Message.Bft_new_view { v; pre_prepares } ->
    if authentic t env then handle_new_view t ~v ~pre_prepares env
  | Message.Order _ | Message.Ack _ | Message.Fail_signal _ | Message.Back_log _
  | Message.Start _ | Message.Start_ack _ | Message.Start_tuples _
  | Message.View_change _ | Message.New_view _ | Message.Unwilling _
  | Message.Heartbeat _ ->
    ()

let start t =
  if i_am_primary t then arm_batch_timer t;
  arm_vc_timer t

let create ~ctx ~config ?(fault = Fault.Honest) () =
  {
    ctx;
    config;
    fault;
    all_ids = List.init (process_count config) Fun.id;
    view = 0;
    pending = Key_map.empty;
    arrival = Key_map.empty;
    ordered_keys = Key_set.empty;
    delivered_keys = Key_set.empty;
    orders = Hashtbl.create 64;
    max_committed = 0;
    delivered = 0;
    next_seq = 1;
    batch_timer = None;
    vc_timer = None;
    last_progress = Simtime.zero;
    view_changes = Hashtbl.create 4;
    changing_view = false;
    vc_span = None;
  }
