module Simtime = Sof_sim.Simtime
module Request = Sof_smr.Request
module Key_map = Request.Key_map
module Key_set = Request.Key_set
module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

type config = {
  f : int;
  batching_interval : Simtime.t;
  batch_size_limit : int;
  digest : Sof_crypto.Digest_alg.t;
  view_change_timeout : Simtime.t;
  checkpoint_interval : int;
  unsafe_digest_blind_votes : bool;
  timing : Config.timing;
}

let make_config ?(batching_interval = Simtime.ms 100) ?(batch_size_limit = 1024)
    ?(digest = Sof_crypto.Digest_alg.MD5) ?(view_change_timeout = Simtime.sec 2)
    ?(checkpoint_interval = 0) ?(unsafe_digest_blind_votes = false)
    ?(timing = Config.Static) ~f () =
  if f < 1 then raise (Config.Invalid_config "Bft.make_config: f must be at least 1");
  if checkpoint_interval < 0 then
    raise (Config.Invalid_config "Bft.make_config: checkpoint_interval must be non-negative");
  if Simtime.compare view_change_timeout Simtime.zero <= 0 then
    raise (Config.Invalid_config "Bft.make_config: view_change_timeout must be positive");
  { f; batching_interval; batch_size_limit; digest; view_change_timeout; checkpoint_interval;
    unsafe_digest_blind_votes; timing }

let process_count config = (3 * config.f) + 1

type order_state = {
  o : int;
  mutable digest : string;
  mutable keys : Request.key list;
  mutable pre_prepared : bool;  (* authentic pre-prepare stored *)
  mutable view_of : int;
  (* Votes are remembered per sender *together with the digest they were
     cast for*: a prepare or commit may legitimately overtake its
     pre-prepare on a reordering link, so votes must be accepted before the
     slot's digest is known — but they may only be *counted* toward the
     digest they name.  Pooling digest-blind votes lets a restarted primary
     combine the cluster's votes for an old in-flight batch with a fresh
     conflicting proposal for the same slot and commit it alone. *)
  mutable prepares : string Int_map.t;
  mutable commits : string Int_map.t;
  mutable sent_prepare : bool;
  mutable sent_commit : bool;
  mutable committed : bool;
  (* trace spans currently open at this process for this order *)
  mutable sp_batch : bool;
  mutable sp_preprep : bool;
  mutable sp_prepare : bool;
  mutable sp_commit : bool;
}

type t = {
  ctx : Context.t;
  config : config;
  fault : Fault.t;
  all_ids : int list;
  mutable view : int;
  mutable pending : Request.t Key_map.t;
  mutable arrival : Simtime.t Key_map.t;
  mutable ordered_keys : Key_set.t;
  mutable delivered_keys : Key_set.t;
  orders : (int, order_state) Hashtbl.t;
  mutable max_committed : int;
  mutable delivered : int;
  mutable next_seq : int;
  mutable batch_timer : Context.timer option;
  mutable vc_timer : Context.timer option;
  mutable last_progress : Simtime.t;
  mutable view_changes : (int, Int_set.t ref * Message.order_info list ref) Hashtbl.t;
  mutable changing_view : bool;
  mutable vc_span : int option;  (* open view-change trace span *)
  rcv : Recovery.state;
  mutable recent_delivered : (int * Request.t list) list;
      (* Delivered batches retained to serve state transfer (newest first);
         pruned one interval behind the stable checkpoint.  Only maintained
         when checkpointing is on. *)
  mutable fetch_timer : Context.timer option;
  (* adaptive timing (Config.Adaptive only; untouched in Static mode so
     seeded static runs keep the exact stream layout) *)
  ests : Sof_net.Delay_estimator.t option array;  (* per-peer RTT, lazy *)
  probe_accepted : int array;  (* highest reply nonce accepted per peer *)
  mutable probe_nonce : int;
  mutable fetch_backoff : int;  (* doublings applied to fetch retries *)
  mutable vc_backoff : int;  (* doublings applied to consecutive suspicions *)
}

let id t = t.ctx.Context.id
let view t = t.view
let n t = process_count t.config
let primary t = t.view mod n t
let i_am_primary t = Int.equal (id t) (primary t)
let max_committed t = t.max_committed
let delivered_seq t = t.delivered

let others t = List.filter (fun p -> not (Int.equal p (id t))) t.all_ids

(* Checkpoints form transferable certificates, so they keep scheme
   signatures; the agreement phases use the wire mode (MAC vectors under
   [--auth mac], where a 2f+1 quorum of direct checks replaces
   transferability). *)
let signer_for t body =
  if Message.accountable_body body then t.ctx.Context.sign_acc
  else t.ctx.Context.sign

let verifier_for t body =
  if Message.accountable_body body then t.ctx.Context.verify_acc
  else t.ctx.Context.verify

let make_signed t body =
  let payload = Message.encode_body body in
  {
    Message.sender = id t;
    body;
    signature = signer_for t body payload;
    endorsement = None;
  }

let authentic t (env : Message.envelope) =
  env.Message.endorsement = None
  && verifier_for t env.Message.body ~signer:env.Message.sender
       ~msg:(Message.encode_body env.Message.body)
       ~signature:env.Message.signature

let can_transmit t = not (Fault.is_mute t.fault ~now:(t.ctx.Context.now ()))

let multicast t ~dsts env = if can_transmit t then t.ctx.Context.multicast ~dsts env

(* ------------------------------------------------------ adaptive timing *)

module Estimator = Sof_net.Delay_estimator

let adaptive t =
  match t.config.timing with Config.Adaptive -> true | Config.Static -> false

let est_for t peer =
  match t.ests.(peer) with
  | Some e -> e
  | None ->
    let e = Estimator.create ~initial:t.config.view_change_timeout () in
    t.ests.(peer) <- Some e;
    e

let timer_cap t = Simtime.ns (64 * Simtime.to_ns t.config.view_change_timeout)

(* The stall budget a replica grants the current primary before suspecting
   it: static mode keeps the configured view-change timeout; adaptive mode
   tracks the measured round-trip to the primary and doubles per
   consecutive suspicion, capped. *)
let suspicion_delay t =
  match t.config.timing with
  | Config.Static -> t.config.view_change_timeout
  | Config.Adaptive ->
    Estimator.backed_off
      (Estimator.timeout (est_for t (primary t)))
      ~level:t.vc_backoff ~cap:(timer_cap t)

let send_probe t dst =
  t.probe_nonce <- t.probe_nonce + 1;
  let at = Simtime.to_ns (t.ctx.Context.now ()) in
  multicast t ~dsts:[ dst ] (make_signed t (Message.Probe { nonce = t.probe_nonce; at }))

let note_probe_reply t ~src ~nonce ~at =
  if adaptive t && nonce > t.probe_accepted.(src) then begin
    t.probe_accepted.(src) <- nonce;
    Estimator.observe (est_for t src)
      (Simtime.diff (t.ctx.Context.now ()) (Simtime.ns at))
  end

let get_order t o =
  match Hashtbl.find_opt t.orders o with
  | Some st -> st
  | None ->
    let st =
      {
        o;
        digest = "";
        keys = [];
        pre_prepared = false;
        view_of = 0;
        prepares = Int_map.empty;
        commits = Int_map.empty;
        sent_prepare = false;
        sent_commit = false;
        committed = false;
        sp_batch = false;
        sp_preprep = false;
        sp_prepare = false;
        sp_commit = false;
      }
    in
    Hashtbl.replace t.orders o st;
    st

(* First vote per sender wins: a later conflicting vote from the same signer
   is equivocation and must not displace the one already on record. *)
let add_vote votes ~sender ~digest =
  if Int_map.mem sender votes then votes else Int_map.add sender digest votes

let votes_for ?(blind = false) votes ~digest =
  (* [blind] resurrects the pre-PR 7 pooling — votes counted regardless of
     the digest they were cast for.  Never set outside the model checker's
     mutant tests, where `sof check` must rediscover the safety violation
     the blackout campaign originally found. *)
  Int_map.fold
    (fun _ d acc -> if blind || String.equal d digest then acc + 1 else acc)
    votes 0

(* Trace spans: [Context.emit] costs no simulated CPU, each sp_* flag means
   "open at this process", and closes only fire when the flag is set, so
   spans balance whenever the order commits locally. *)

let span_open t phase seq = t.ctx.Context.emit (Context.Span_open { phase; seq })
let span_close t phase seq = t.ctx.Context.emit (Context.Span_close { phase; seq })

(* ------------------------------------------------ checkpointing (BFT) *)
(* PBFT-style stable checkpoints: every process signs and multicasts its
   state digest at each boundary; 2f+1 matching signatures certify it. *)

let send_one t ~dst env = if can_transmit t then t.ctx.Context.send ~dst env

let log_length t = Hashtbl.length t.orders

let stable_checkpoint_seq t = Recovery.stable_seq t.rcv
let latest_stable t = Recovery.latest_stable t.rcv
let client_marks t = Recovery.marks t.rcv

let ckpt_quorum t = (2 * t.config.f) + 1

let ckpt_scheme t =
  Recovery.Quorum_signed
    { quorum = ckpt_quorum t; member_ok = (fun p -> p >= 0 && p < n t) }

let truncate t upto =
  let stale = Hashtbl.fold (fun o _ acc -> if o <= upto then o :: acc else acc) t.orders [] in
  List.iter (Hashtbl.remove t.orders) stale;
  (* Keep one extra interval of delivered keys so a primary elected late that
     re-orders a just-delivered request is still deduplicated. *)
  let keep_above = upto - t.config.checkpoint_interval in
  let dropped, kept = List.partition (fun (o, _) -> o <= keep_above) t.recent_delivered in
  List.iter
    (fun (_, requests) ->
      List.iter
        (fun (req : Request.t) ->
          t.delivered_keys <- Key_set.remove req.Request.key t.delivered_keys;
          t.ordered_keys <- Key_set.remove req.Request.key t.ordered_keys)
        requests)
    dropped;
  t.recent_delivered <- kept;
  t.ctx.Context.emit (Context.Log_truncated { upto; retained = Hashtbl.length t.orders })

let maybe_stabilize t ~seq ~digest =
  if
    seq > Recovery.stable_seq t.rcv
    && Recovery.Tally.count (Recovery.tally t.rcv) ~seq ~digest >= ckpt_quorum t
  then
    match Recovery.image_at t.rcv ~seq with
    | Some image when String.equal (Checkpoint.image_digest t.config.digest image) digest ->
      let cert =
        {
          Checkpoint.cp_seq = seq;
          cp_digest = digest;
          cp_proof = Recovery.Tally.proof (Recovery.tally t.rcv) ~seq ~digest;
          cp_endorsement = None;
        }
      in
      if Recovery.note_stable t.rcv ~cert ~image then begin
        t.ctx.Context.emit (Context.Checkpoint_stable { seq; digest });
        span_close t Context.Checkpoint_phase seq;
        truncate t seq
      end
    | Some _ | None -> ()

let checkpoint_boundary t o =
  let image =
    Checkpoint.wrap_image ~state:(t.ctx.Context.snapshot ()) ~marks:(Recovery.marks t.rcv)
  in
  t.ctx.Context.digest_charge (String.length image);
  let digest = Checkpoint.image_digest t.config.digest image in
  Recovery.note_image t.rcv ~seq:o ~image;
  span_open t Context.Checkpoint_phase o;
  let env = make_signed t (Message.Checkpoint { seq = o; digest }) in
  Recovery.Tally.add (Recovery.tally t.rcv) ~seq:o ~digest ~signer:(id t)
    ~signature:env.Message.signature;
  multicast t ~dsts:(others t) env;
  maybe_stabilize t ~seq:o ~digest

let rec advance_delivery t =
  match Hashtbl.find_opt t.orders (t.delivered + 1) with
  | None -> ()
  | Some st when not st.committed -> ()
  | Some st ->
    if st.keys = [] then begin
      t.delivered <- st.o;
      let batch = Batch.make [] in
      t.ctx.Context.deliver ~seq:st.o batch;
      t.ctx.Context.emit (Context.Delivered { seq = st.o; batch });
      if t.config.checkpoint_interval > 0 then begin
        t.recent_delivered <- (st.o, []) :: t.recent_delivered;
        if Checkpoint.is_boundary ~interval:t.config.checkpoint_interval st.o then
          checkpoint_boundary t st.o
      end;
      advance_delivery t
    end
    else begin
      (* At-most-once: a primary elected after a view change may re-order
         requests an earlier view already committed.  Honest processes agree
         on the committed prefix, so they prune the same already-delivered
         keys and execute identical sub-batches. *)
      let fresh =
        List.filter
          (fun k ->
            (not (Key_set.mem k t.delivered_keys))
            && (t.config.checkpoint_interval = 0 || Recovery.fresh_key t.rcv k))
          st.keys
      in
      let requests = List.filter_map (fun k -> Key_map.find_opt k t.pending) fresh in
      if Int.equal (List.length requests) (List.length fresh) then begin
        t.delivered <- st.o;
        List.iter
          (fun k ->
            t.delivered_keys <- Key_set.add k t.delivered_keys;
            if t.config.checkpoint_interval > 0 then Recovery.mark_delivered t.rcv k;
            t.pending <- Key_map.remove k t.pending;
            t.arrival <- Key_map.remove k t.arrival)
          st.keys;
        let batch = Batch.make requests in
        t.ctx.Context.deliver ~seq:st.o batch;
        t.ctx.Context.emit (Context.Delivered { seq = st.o; batch });
        if t.config.checkpoint_interval > 0 then begin
          t.recent_delivered <- (st.o, requests) :: t.recent_delivered;
          if Checkpoint.is_boundary ~interval:t.config.checkpoint_interval st.o then
            checkpoint_boundary t st.o
        end;
        advance_delivery t
      end
    end

let try_commit_point t st =
  if
    st.pre_prepared && (not st.committed)
    && votes_for ~blind:t.config.unsafe_digest_blind_votes st.commits
         ~digest:st.digest
       >= (2 * t.config.f) + 1
  then begin
    if st.sp_preprep then begin
      st.sp_preprep <- false;
      span_close t Context.Pre_prepare_phase st.o
    end;
    if st.sp_prepare then begin
      st.sp_prepare <- false;
      span_close t Context.Prepare_phase st.o
    end;
    if st.sp_commit then begin
      st.sp_commit <- false;
      span_close t Context.Commit_phase st.o
    end;
    if st.sp_batch then begin
      st.sp_batch <- false;
      span_close t Context.Batch_phase st.o
    end;
    st.committed <- true;
    t.last_progress <- t.ctx.Context.now ();
    if st.o > t.max_committed then t.max_committed <- st.o;
    t.ctx.Context.emit
      (Context.Committed { seq = st.o; digest = st.digest; keys = st.keys });
    advance_delivery t
  end

let try_prepared_point t st =
  if
    st.pre_prepared && st.sent_prepare && (not st.sent_commit)
    && votes_for ~blind:t.config.unsafe_digest_blind_votes st.prepares
         ~digest:st.digest
       >= 2 * t.config.f
  then begin
    st.sent_commit <- true;
    if st.sp_prepare then begin
      st.sp_prepare <- false;
      span_close t Context.Prepare_phase st.o
    end;
    if st.sp_batch && not st.sp_commit then begin
      st.sp_commit <- true;
      span_open t Context.Commit_phase st.o
    end;
    let body = Message.Commit { v = st.view_of; o = st.o; digest = st.digest } in
    let env = make_signed t body in
    multicast t ~dsts:t.all_ids env
  end

let send_prepare t st =
  if not st.sent_prepare then begin
    st.sent_prepare <- true;
    if st.sp_preprep then begin
      st.sp_preprep <- false;
      span_close t Context.Pre_prepare_phase st.o
    end;
    if st.sp_batch && not st.sp_prepare then begin
      st.sp_prepare <- true;
      span_open t Context.Prepare_phase st.o
    end;
    let body = Message.Prepare { v = st.view_of; o = st.o; digest = st.digest } in
    let env = make_signed t body in
    multicast t ~dsts:t.all_ids env
  end

let accept_pre_prepare t ~(info : Message.order_info) ~v =
  let st = get_order t info.Message.o in
  if st.pre_prepared && (st.view_of > v || not (String.equal st.digest info.Message.digest)) then ()
  else begin
    if (not st.sp_batch) && not st.committed then begin
      st.sp_batch <- true;
      span_open t Context.Batch_phase st.o
    end;
    if st.sp_batch && (not st.sp_preprep) && not st.sent_prepare then begin
      st.sp_preprep <- true;
      span_open t Context.Pre_prepare_phase st.o
    end;
    st.pre_prepared <- true;
    st.view_of <- v;
    st.digest <- info.Message.digest;
    st.keys <- info.Message.keys;
    List.iter (fun k -> t.ordered_keys <- Key_set.add k t.ordered_keys) info.Message.keys;
    send_prepare t st;
    try_prepared_point t st;
    try_commit_point t st
  end

(* --------------------------------------------- state transfer (BFT) *)

(* Serve the stable checkpoint image (when the requester is behind it), the
   retained delivered batches, and the committed-but-undelivered tail.  Every
   entry digest is recomputed over exactly the requests served — correct
   processes deliver identical filtered batches, so their recomputed digests
   agree and f+1 matching claims pin each entry down at the requester.  A
   Byzantine responder can serve a corrupt image ([Corrupt_checkpoint_image])
   or a lazily stale checkpoint ([Stale_checkpoint]); the first is rejected
   against the certified digest, the second simply loses to fresher offers. *)
let serve_state_request t ~src ~have =
  let stable =
    match t.fault with
    | Fault.Stale_checkpoint -> Recovery.previous_stable t.rcv
    | _ -> Recovery.latest_stable t.rcv
  in
  let cert, image =
    match stable with
    | Some (c, img) when c.Checkpoint.cp_seq > have -> (Some c, img)
    | Some _ | None -> (None, "")
  in
  let image =
    match t.fault with
    | Fault.Corrupt_checkpoint_image when String.length image > 0 ->
      let b = Bytes.of_string image in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      Bytes.to_string b
    | _ -> image
  in
  let base = match cert with Some c -> max have c.Checkpoint.cp_seq | None -> have in
  let entries =
    match t.fault with
    | Fault.Stale_checkpoint -> []
    | _ ->
      let delivered_entries =
        List.filter_map
          (fun (o, requests) ->
            if o > base then begin
              let batch = Batch.make requests in
              t.ctx.Context.digest_charge (Batch.encoded_size batch);
              Some
                {
                  Checkpoint.e_o = o;
                  e_digest = Batch.digest t.config.digest batch;
                  e_requests = requests;
                }
            end
            else None)
          t.recent_delivered
      in
      let tail =
        Hashtbl.fold
          (fun o st acc ->
            if o <= t.delivered || o <= base || not st.committed then acc
            else begin
              let requests =
                List.filter_map (fun k -> Key_map.find_opt k t.pending) st.keys
              in
              if Int.equal (List.length requests) (List.length st.keys) then begin
                let batch = Batch.make requests in
                t.ctx.Context.digest_charge (Batch.encoded_size batch);
                {
                  Checkpoint.e_o = o;
                  e_digest = Batch.digest t.config.digest batch;
                  e_requests = requests;
                }
                :: acc
              end
              else acc
            end)
          t.orders []
      in
      List.sort
        (fun (a : Checkpoint.entry) b -> Int.compare a.Checkpoint.e_o b.Checkpoint.e_o)
        (delivered_entries @ tail)
  in
  (* A Byzantine responder serving from a tampered local log: the checkpoint
     is genuine but every entry digest is flipped, so no entry matches its
     recomputed batch digest and the requester's entry checks exclude the
     whole suffix. *)
  let entries =
    match t.fault with
    | Fault.Corrupt_wal_suffix ->
      List.map
        (fun (e : Checkpoint.entry) ->
          match e.Checkpoint.e_digest with
          | "" -> e
          | d ->
            let b = Bytes.of_string d in
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
            { e with Checkpoint.e_digest = Bytes.to_string b })
        entries
    | _ -> entries
  in
  send_one t ~dst:src (make_signed t (Message.State_response { cert; image; entries }))

let entry_ok t (e : Checkpoint.entry) =
  let batch = Batch.make e.Checkpoint.e_requests in
  t.ctx.Context.digest_charge (Batch.encoded_size batch);
  String.equal (Batch.digest t.config.digest batch) e.Checkpoint.e_digest

(* Install the best certified image above our delivery point, then the
   contiguous entry suffix with f+1 matching claims per entry (at least one
   claimant is correct).  Transferred entries enter the log as committed and
   are delivered by the normal in-sequence walk; no Committed event is
   re-emitted for them. *)
let install_from_offers ?(announce = true) t ~entry_quorum =
  let image_installed =
    match Recovery.best_image t.rcv ~above:t.delivered with
    | Some (cert, image, _) -> begin
      match Checkpoint.unwrap_image image with
      | None -> false (* digest-verified yet malformed: refuse quietly *)
      | Some (snap, marks) ->
        t.ctx.Context.restore snap;
        Recovery.merge_marks t.rcv marks;
        t.delivered <- cert.Checkpoint.cp_seq;
        if t.max_committed < cert.Checkpoint.cp_seq then
          t.max_committed <- cert.Checkpoint.cp_seq;
        Recovery.note_image t.rcv ~seq:cert.Checkpoint.cp_seq ~image;
        if Recovery.note_stable t.rcv ~cert ~image then
          t.ctx.Context.emit
            (Context.Checkpoint_stable
               { seq = cert.Checkpoint.cp_seq; digest = cert.Checkpoint.cp_digest });
        truncate t cert.Checkpoint.cp_seq;
        true
    end
    | None -> false
  in
  let installed_at = t.delivered in
  let entries =
    Recovery.select_entries ~quorum:entry_quorum ~base:t.delivered
      ~entry_ok:(entry_ok t) t.rcv
  in
  List.iter
    (fun (e : Checkpoint.entry) ->
      let st = get_order t e.Checkpoint.e_o in
      if not st.committed then begin
        st.digest <- e.Checkpoint.e_digest;
        st.keys <- List.map (fun (r : Request.t) -> r.Request.key) e.Checkpoint.e_requests;
        st.pre_prepared <- true;
        st.committed <- true;
        List.iter
          (fun (r : Request.t) ->
            t.ordered_keys <- Key_set.add r.Request.key t.ordered_keys;
            if
              (not (Key_map.mem r.Request.key t.pending))
              && not (Key_set.mem r.Request.key t.delivered_keys)
            then t.pending <- Key_map.add r.Request.key r t.pending)
          e.Checkpoint.e_requests;
        if st.o > t.max_committed then t.max_committed <- st.o
      end)
    entries;
  if announce && (image_installed || entries <> []) then
    t.ctx.Context.emit
      (Context.State_transfer_installed
         { seq = installed_at; entries = List.length entries });
  advance_delivery t

let attempt_install t = install_from_offers t ~entry_quorum:(t.config.f + 1)

(* Local-first recovery: the locally persisted checkpoint image and WAL
   entry suffix enter as a synthetic self-offer, verified exactly like a
   peer's State_response — 2f+1-signed certificate, image bytes against
   the certified digest, each entry against its recomputed batch digest.
   Entry quorum 1: the replica vouches only for its own log, and the
   digest checks exclude any torn or tampered suffix entry-by-entry.
   Returns whether delivery advanced; the caller escalates to peer repair
   when it did not or the log was damaged. *)
let recover_local t ~cert ~image ~entries =
  let before = t.delivered in
  let cert_ok =
    match cert with
    | None -> true
    | Some c ->
      t.ctx.Context.digest_charge (String.length image);
      Recovery.verify_cert
        ~verify:(fun ~signer ~msg ~signature ->
          t.ctx.Context.verify_acc ~signer ~msg ~signature)
        ~scheme:(ckpt_scheme t) c
      && String.equal (Checkpoint.image_digest t.config.digest image) c.Checkpoint.cp_digest
  in
  if not cert_ok then begin
    t.ctx.Context.emit (Context.State_transfer_rejected { from = id t });
    false
  end
  else begin
    Recovery.clear_offers t.rcv;
    Recovery.add_offer t.rcv
      { Recovery.st_from = id t; st_cert = cert; st_image = image; st_entries = entries };
    (* The synthetic self-offer is a local replay, not a peer transfer:
       the harness announces it as [Wal_replayed], so the install stays
       silent to keep transfer accounting honest. *)
    install_from_offers ~announce:false t ~entry_quorum:1;
    Recovery.clear_offers t.rcv;
    (* A recovered process must never mint at or below what it just
       restored: a fresh order under a committed sequence number could
       strand below the delivery low-water mark or conflict with an
       absorbed entry. *)
    if t.next_seq <= t.max_committed then t.next_seq <- t.max_committed + 1;
    t.delivered > before
  end

let fetch_target t =
  List.fold_left
    (fun acc (off : Recovery.offer) ->
      let acc =
        match off.Recovery.st_cert with
        | Some c -> max acc c.Checkpoint.cp_seq
        | None -> acc
      in
      List.fold_left
        (fun acc (e : Checkpoint.entry) -> max acc e.Checkpoint.e_o)
        acc off.Recovery.st_entries)
    0 (Recovery.offers t.rcv)

(* End the fetch only after offers from f+1 distinct responders (so at
   least one is honest) all fall at or below what we have delivered: a
   single early "nothing above your watermark" reply must not terminate
   the fetch before a helpful offer arrives. *)
let maybe_end_fetch t =
  if
    Recovery.fetching t.rcv
    && List.length (Recovery.offers t.rcv) > t.config.f
    && t.delivered >= fetch_target t
  then begin
    span_close t Context.Recovery_phase (Recovery.fetch_anchor t.rcv);
    Recovery.end_fetch t.rcv;
    (match t.fetch_timer with Some h -> h.Context.cancel () | None -> ());
    t.fetch_timer <- None;
    t.fetch_backoff <- 0;
    Recovery.clear_offers t.rcv
  end

let rec fetch_tick t =
  if Recovery.fetching t.rcv then begin
    Recovery.clear_offers t.rcv;
    multicast t ~dsts:(others t)
      (make_signed t (Message.State_request { have = t.delivered }));
    let delay =
      if adaptive t then begin
        let d =
          Estimator.backed_off t.config.view_change_timeout ~level:t.fetch_backoff
            ~cap:(timer_cap t)
        in
        t.fetch_backoff <- t.fetch_backoff + 1;
        d
      end
      else t.config.view_change_timeout
    in
    t.fetch_timer <- Some (t.ctx.Context.set_timer ~delay (fun () -> fetch_tick t))
  end

let request_recovery t =
  if not (Recovery.fetching t.rcv) then begin
    Recovery.begin_fetch t.rcv ~have:t.delivered;
    t.ctx.Context.emit (Context.State_transfer_started { have = t.delivered });
    span_open t Context.Recovery_phase t.delivered;
    fetch_tick t
  end

let handle_state_response t ~src ~cert ~image ~entries =
  if Recovery.fetching t.rcv then begin
    let cert_ok =
      match cert with
      | None -> true
      | Some c ->
        t.ctx.Context.digest_charge (String.length image);
        Recovery.verify_cert
          ~verify:(fun ~signer ~msg ~signature ->
            t.ctx.Context.verify_acc ~signer ~msg ~signature)
          ~scheme:(ckpt_scheme t) c
        && String.equal (Checkpoint.image_digest t.config.digest image) c.Checkpoint.cp_digest
    in
    if not cert_ok then t.ctx.Context.emit (Context.State_transfer_rejected { from = src })
    else begin
      Recovery.add_offer t.rcv
        { Recovery.st_from = src; st_cert = cert; st_image = image; st_entries = entries };
      attempt_install t;
      maybe_end_fetch t
    end
  end

(* ----------------------------------------------------------- batching *)

let issue_pre_prepare t info =
  match t.fault with
  | Fault.Equivocate_at at when Int.equal at info.Message.o ->
    (* Equivocating primary: split the backups between two conflicting
       pre-prepare digests.  Neither half can assemble 2f matching prepares
       beyond the quorum-intersection bound, so agreement holds; progress at
       this sequence number waits for the view change. *)
    let b = Bytes.of_string info.Message.digest in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
    let alt = { info with Message.digest = Bytes.to_string b } in
    List.iteri
      (fun i dst ->
        let chosen = if i mod 2 = 0 then info else alt in
        multicast t ~dsts:[ dst ]
          (make_signed t (Message.Pre_prepare { v = t.view; info = chosen })))
      (others t);
    accept_pre_prepare t ~info ~v:t.view
  | _ ->
    let body = Message.Pre_prepare { v = t.view; info } in
    let env = make_signed t body in
    multicast t ~dsts:(others t) env;
    accept_pre_prepare t ~info ~v:t.view

let rec arm_batch_timer t =
  let h =
    t.ctx.Context.set_timer ~delay:t.config.batching_interval (fun () -> batch_tick t)
  in
  t.batch_timer <- Some h

and batch_tick t =
  if i_am_primary t && not t.changing_view then begin
    let pool = Key_map.filter (fun k _ -> not (Key_set.mem k t.ordered_keys)) t.pending in
    if not (Key_map.is_empty pool) then begin
      let requests = Batch.take_from_pool ~limit:t.config.batch_size_limit ~pool in
      let batch = Batch.make requests in
      let o = t.next_seq in
      t.next_seq <- o + 1;
      t.ctx.Context.digest_charge (Batch.encoded_size batch);
      let digest = Batch.digest t.config.digest batch in
      let digest =
        match t.fault with
        | Fault.Corrupt_digest_at at when Int.equal at o ->
          let b = Bytes.of_string digest in
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
          Bytes.to_string b
        | _ -> digest
      in
      let info = { Message.o; digest; keys = Batch.keys batch } in
      t.ctx.Context.emit
        (Context.Batched
           { seq = o; requests = Batch.request_count batch; bytes = Batch.encoded_size batch });
      List.iter (fun k -> t.ordered_keys <- Key_set.add k t.ordered_keys) info.Message.keys;
      issue_pre_prepare t info
    end;
    arm_batch_timer t
  end

(* ---------------------------------------------------------- view change *)

let prepared_set t =
  Hashtbl.fold
    (fun o st acc ->
      if
        st.pre_prepared && (not st.committed) && o > t.max_committed
        && votes_for ~blind:t.config.unsafe_digest_blind_votes st.prepares
             ~digest:st.digest
           >= 2 * t.config.f
      then { Message.o; digest = st.digest; keys = st.keys } :: acc
      else acc)
    t.orders []
  |> List.sort (fun a b -> Int.compare a.Message.o b.Message.o)

let rec arm_vc_timer t =
  let h =
    t.ctx.Context.set_timer ~kind:Context.Watchdog ~delay:t.config.view_change_timeout
      (fun () -> vc_tick t)
  in
  t.vc_timer <- Some h

and vc_tick t =
  if adaptive t && not (i_am_primary t) then send_probe t (primary t);
  let budget = Simtime.add t.config.batching_interval (suspicion_delay t) in
  let now = t.ctx.Context.now () in
  let stalled =
    Simtime.compare (Simtime.add t.last_progress budget) now <= 0
    && Key_map.exists
         (fun k since ->
           (not (Key_set.mem k t.ordered_keys))
           && Simtime.compare (Simtime.add since budget) now <= 0)
         t.arrival
  in
  if stalled && not t.changing_view then start_view_change t (t.view + 1);
  arm_vc_timer t

and start_view_change t v =
  if v > t.view then begin
    t.vc_backoff <- t.vc_backoff + 1;
    (match t.vc_span with
    | Some old -> span_close t Context.View_change_phase old
    | None -> ());
    t.vc_span <- Some v;
    span_open t Context.View_change_phase v;
    t.changing_view <- true;
    (match t.batch_timer with Some h -> h.Context.cancel () | None -> ());
    t.batch_timer <- None;
    let body =
      Message.Bft_view_change { v; prepared = prepared_set t }
    in
    let env = make_signed t body in
    multicast t ~dsts:t.all_ids env
  end

let rec handle_view_change t ~src:_ ~v ~prepared (env : Message.envelope) =
  if v > t.view || (Int.equal v t.view && t.changing_view) then begin
    let voters, infos =
      match Hashtbl.find_opt t.view_changes v with
      | Some (voters, infos) -> (voters, infos)
      | None ->
        let cell = (ref Int_set.empty, ref []) in
        Hashtbl.replace t.view_changes v cell;
        cell
    in
    if not (Int_set.mem env.Message.sender !voters) then begin
      voters := Int_set.add env.Message.sender !voters;
      infos := prepared @ !infos;
      (* Join the view change once f+1 replicas vouch for it (a correct
         replica must be among them). *)
      if Int.equal (Int_set.cardinal !voters) (t.config.f + 1) && not t.changing_view then
        start_view_change t v;
      if Int_set.cardinal !voters >= (2 * t.config.f) + 1 && Int.equal (v mod n t) (id t) then begin
        (* New primary: re-issue pre-prepares for every prepared order. *)
        let by_o = Hashtbl.create 16 in
        List.iter
          (fun (info : Message.order_info) ->
            if info.Message.o > t.max_committed then
              Hashtbl.replace by_o info.Message.o info)
          !infos;
        let pre_prepares =
          Hashtbl.fold (fun _ info acc -> info :: acc) by_o []
          |> List.sort (fun a b -> Int.compare a.Message.o b.Message.o)
        in
        let body = Message.Bft_new_view { v; pre_prepares } in
        let env' = make_signed t body in
        multicast t ~dsts:(others t) env';
        enter_view t v pre_prepares
      end
    end
  end

and enter_view t v pre_prepares =
  t.view <- v;
  t.changing_view <- false;
  t.vc_backoff <- 0;
  (match t.vc_span with
  | Some old ->
    t.vc_span <- None;
    span_close t Context.View_change_phase old
  | None -> ());
  t.ctx.Context.emit (Context.View_installed { v });
  let top =
    List.fold_left
      (fun acc (i : Message.order_info) -> max acc i.Message.o)
      t.max_committed pre_prepares
  in
  let top = Hashtbl.fold (fun o _ acc -> max o acc) t.orders top in
  List.iter (fun (info : Message.order_info) -> accept_pre_prepare t ~info ~v) pre_prepares;
  if i_am_primary t then begin
    t.next_seq <- top + 1;
    arm_batch_timer t
  end;
  (* Give fresh grace to everything still pending. *)
  let now = t.ctx.Context.now () in
  t.arrival <- Key_map.map (fun _ -> now) t.arrival

let handle_new_view t ~v ~pre_prepares (env : Message.envelope) =
  if v >= t.view && Int.equal env.Message.sender (v mod n t) then enter_view t v pre_prepares

(* -------------------------------------------------------------- inbound *)

let on_request t (req : Request.t) =
  let key = req.Request.key in
  if not (Key_map.mem key t.pending) then begin
    t.pending <- Key_map.add key req t.pending;
    if not (Key_set.mem key t.ordered_keys) then
      t.arrival <- Key_map.add key (t.ctx.Context.now ()) t.arrival;
    advance_delivery t
  end

let on_message t ~src (env : Message.envelope) =
  ignore src;
  match env.Message.body with
  | Message.Pre_prepare { v; info } ->
    if Int.equal v t.view && (not t.changing_view) && Int.equal env.Message.sender (primary t)
       && info.Message.o > Recovery.stable_seq t.rcv
       && authentic t env
    then accept_pre_prepare t ~info ~v
  | Message.Prepare { v; o; digest } ->
    (* Sequence numbers at or below the stable checkpoint are settled and
       truncated — stragglers must not resurrect them in the log. *)
    if v <= t.view && o > Recovery.stable_seq t.rcv && authentic t env then begin
      let st = get_order t o in
      st.prepares <- add_vote st.prepares ~sender:env.Message.sender ~digest;
      try_prepared_point t st;
      try_commit_point t st
    end
  | Message.Commit { v; o; digest } ->
    if v <= t.view && o > Recovery.stable_seq t.rcv && authentic t env then begin
      let st = get_order t o in
      st.commits <- add_vote st.commits ~sender:env.Message.sender ~digest;
      try_commit_point t st
    end
  | Message.Bft_view_change { v; prepared } ->
    if authentic t env then handle_view_change t ~src ~v ~prepared env
  | Message.Bft_new_view { v; pre_prepares } ->
    if authentic t env then handle_new_view t ~v ~pre_prepares env
  | Message.Checkpoint { seq; digest } ->
    if
      t.config.checkpoint_interval > 0
      && seq > Recovery.stable_seq t.rcv
      && authentic t env
    then begin
      Recovery.Tally.add (Recovery.tally t.rcv) ~seq ~digest ~signer:env.Message.sender
        ~signature:env.Message.signature;
      maybe_stabilize t ~seq ~digest;
      (* A checkpoint a full interval ahead of our delivery point means we
         are lagging badly — likely freshly restarted; catch up by state
         transfer rather than waiting for retransmissions. *)
      if seq > t.delivered + t.config.checkpoint_interval then request_recovery t
    end
  | Message.State_request { have } -> if authentic t env then serve_state_request t ~src ~have
  | Message.State_response { cert; image; entries } ->
    if authentic t env then handle_state_response t ~src ~cert ~image ~entries
  | Message.Probe { nonce; at } ->
    (* Echo the sender's timestamp back; replies are liveness-only input so
       they need no verification beyond the estimator's nonce filter. *)
    if adaptive t then
      multicast t ~dsts:[ src ] (make_signed t (Message.Probe_reply { nonce; at }))
  | Message.Probe_reply { nonce; at } -> note_probe_reply t ~src ~nonce ~at
  | Message.Order _ | Message.Ack _ | Message.Fail_signal _ | Message.Back_log _
  | Message.Start _ | Message.Start_ack _ | Message.Start_tuples _
  | Message.View_change _ | Message.New_view _ | Message.Unwilling _
  | Message.Heartbeat _ ->
    ()

let start t =
  if i_am_primary t then arm_batch_timer t;
  arm_vc_timer t

let create ~ctx ~config ?(fault = Fault.Honest) () =
  {
    ctx;
    config;
    fault;
    all_ids = List.init (process_count config) Fun.id;
    view = 0;
    pending = Key_map.empty;
    arrival = Key_map.empty;
    ordered_keys = Key_set.empty;
    delivered_keys = Key_set.empty;
    orders = Hashtbl.create 64;
    max_committed = 0;
    delivered = 0;
    next_seq = 1;
    batch_timer = None;
    vc_timer = None;
    last_progress = Simtime.zero;
    view_changes = Hashtbl.create 4;
    changing_view = false;
    vc_span = None;
    rcv = Recovery.create ();
    recent_delivered = [];
    fetch_timer = None;
    ests = Array.make (process_count config) None;
    probe_accepted = Array.make (process_count config) 0;
    probe_nonce = 0;
    fetch_backoff = 0;
    vc_backoff = 0;
  }
