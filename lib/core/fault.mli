(** Byzantine fault injection.

    A fault is attached to one process and drives its misbehaviour at the
    protocol's decision points.  Faulty processes still cannot forge other
    processes' signatures (keyring enforcement), so every injected behaviour
    is within the cryptography-constrained Byzantine model.

    The first group of variants acts inside the protocol state machines
    ([Sc], [Scr], [Bft] consult the fault at their decision points); the last
    two — [Replay_stale] and [Corrupt_wire] — act on the wire and are driven
    by the harness adversary ({!Sof_harness.Adversary}) rather than by the
    protocol code. *)

type t =
  | Honest
  | Corrupt_digest_at of int
      (** As coordinator primary: the order with this sequence number
          carries a wrong batch digest — a value-domain failure the shadow
          must catch. *)
  | Endorse_corrupt_at of int
      (** As coordinator shadow: endorse even an invalid order with this
          sequence number (colluding shadow; exercises the receivers'
          independent checks). *)
  | Mute_at of Sof_sim.Simtime.t
      (** Stop transmitting at the given instant (crash / time-domain
          failure as seen by the counterpart). *)
  | Drop_endorsements
      (** As shadow: receive orders but never endorse them (time-domain
          failure as seen by the primary). *)
  | Equivocate_at of int
      (** As coordinator primary: send conflicting orders for this sequence
          number to different receivers — the counterpart shadow sees a
          corrupted digest (a value-domain failure it must signal) while the
          other replicas receive a differently-signed variant.  In BFT the
          primary splits the backups between two pre-prepare digests. *)
  | Spurious_fail_signal_at of Sof_sim.Simtime.t
      (** As a pair member: emit a fail-signal against an innocent
          counterpart at the given instant (fail-signal abuse; the
          accountability invariant must attribute it to this process). *)
  | Withhold_fail_signal
      (** As a pair member: never emit a fail-signal, even when the
          counterpart demonstrably misbehaves (suppresses detection; the
          protocol must survive on the other member's signal or timeouts). *)
  | Unwilling_spam
      (** SCR only: answer every ViewChange with Unwilling even while Up,
          forcing the view past this process's candidacies. *)
  | Replay_stale of int
      (** Wire-level: alongside each genuine send, replay up to the given
          number of stale signed payloads previously sent by this process —
          old views, old sequence numbers.  Signatures verify; receivers
          must reject on freshness grounds. *)
  | Corrupt_wire of int
      (** Wire-level: flip a bit in roughly one out of [n] outgoing
          payloads after signing.  The mutated bytes can no longer verify
          under honest keys, so receivers must drop them without crashing. *)
  | Corrupt_checkpoint_image
      (** When serving a state-transfer response: flip bytes in the state
          image while keeping the genuine certificate.  The image no longer
          digests to the certified value, so recovering replicas must reject
          the offer. *)
  | Stale_checkpoint
      (** When serving a state-transfer response: answer with the previous
          stable checkpoint instead of the latest, and no log suffix — a
          lazy-or-malicious responder whose offer leaves the requester
          behind.  Recovery must make progress from other responders. *)
  | Corrupt_wal_suffix
      (** When serving a state-transfer response: tamper with the log
          suffix read from the local write-ahead log — flip bytes in the
          served entries while keeping the genuine checkpoint.  The
          tampered entries no longer match their digests, so recovering
          replicas must exclude them via the entry quorum/digest checks. *)

val is_mute : t -> now:Sof_sim.Simtime.t -> bool
(** Whether a process with this fault transmits nothing at [now]. *)

val pp : Format.formatter -> t -> unit
