module Request = Sof_smr.Request

type t = { requests : Request.t list }

let make requests = { requests }

let keys t = List.map (fun r -> r.Request.key) t.requests

let digest alg t =
  let buf = Buffer.create 256 in
  List.iter (fun r -> Buffer.add_string buf (Request.encode r)) t.requests;
  Sof_crypto.Digest_alg.digest alg (Buffer.contents buf)

let encoded_size t =
  List.fold_left (fun acc r -> acc + Request.encoded_size r) 0 t.requests

let request_count t = List.length t.requests

let take_from_pool ~limit ~pool =
  let rec take bindings size acc =
    match bindings with
    | [] -> List.rev acc
    | (_, r) :: rest ->
      let s = Request.encoded_size r in
      if size + s > limit && acc <> [] then List.rev acc
      else take rest (size + s) (r :: acc)
  in
  take (Request.Key_map.bindings pool) 0 []

let take_oldest ~limit ~pool ~arrival =
  let age k =
    match Request.Key_map.find_opt k arrival with
    | Some at -> Sof_sim.Simtime.to_ns at
    | None -> max_int
  in
  let bindings =
    Request.Key_map.bindings pool
    |> List.sort (fun (k1, _) (k2, _) ->
           let c = Int.compare (age k1) (age k2) in
           if c <> 0 then c else Request.compare_key k1 k2)
  in
  let rec take bindings size acc =
    match bindings with
    | [] -> List.rev acc
    | (_, r) :: rest ->
      let s = Request.encoded_size r in
      if size + s > limit && acc <> [] then List.rev acc
      else take rest (size + s) (r :: acc)
  in
  take bindings 0 []

let pp fmt t =
  Format.fprintf fmt "batch[%d reqs, %dB]" (request_count t) (encoded_size t)
