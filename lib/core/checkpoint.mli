(** Checkpoint certificates and state-transfer entries.

    A checkpoint is a periodic fingerprint of the replicated service: at
    every [interval]-th delivered sequence number each process snapshots its
    application state and digests it together with the log anchor.  A
    checkpoint becomes {e stable} once certified — by a quorum of signatures
    for BFT (2f+1) and CT (f+1, unsigned under the crash-only model), or by
    the coordinator pair's double signature for SC/SCR (the signal-on-fail
    trust model: at most one member of a pair is faulty, so a doubly-signed
    checkpoint carries at least one correct signature).  A stable checkpoint
    bounds the paper's fig6 BackLog: everything at or below it may be
    truncated from the order log, and a lagging or restarted replica
    recovers by fetching the certified image plus the committed log suffix.

    This module holds only the data and its codec; certification and
    verification live in {!Recovery} (they need the message encoding, which
    in turn embeds these types). *)

type cert = {
  cp_seq : int;  (** Checkpointed sequence number (a multiple of the interval). *)
  cp_digest : string;  (** Digest of the state image at [cp_seq]. *)
  cp_proof : (int * string) list;
      (** (signer, signature) set over the encoded Checkpoint body.  A
          quorum for BFT/CT; the singleton first signature for SC/SCR. *)
  cp_endorsement : (int * string) option;
      (** SC/SCR pair mode: the counterpart's second signature over
          body-plus-first-signature, exactly as envelope endorsements. *)
}

type entry = {
  e_o : int;  (** Committed sequence number above the checkpoint. *)
  e_digest : string;  (** The digest under which [e_o] committed. *)
  e_requests : Sof_smr.Request.t list;
      (** Full request bodies, so a replica with an empty pool can deliver.
          Empty for null orders (gap fillers, Start placeholders). *)
}

val is_boundary : interval:int -> int -> bool
(** Whether a sequence number is a checkpoint boundary ([interval] > 0 and
    the number is a positive multiple of it). *)

val image_digest : Sof_crypto.Digest_alg.t -> string -> string
(** The digest a checkpoint certifies: over the raw state image bytes. *)

val wrap_image : state:string -> marks:(int * int) list -> string
(** Pack a service snapshot and the per-client delivery high-water marks
    ([(client, highest delivered client_seq)]) into one image.  The
    at-most-once filter is replicated state: without it a recovered
    process would re-deliver a request that a coordinator elected across a
    partition legally rebatches.  The marks — not the raw delivered-key
    sets, which processes prune at their own pace — are what is
    deterministic across correct processes at a boundary; [marks] must be
    sorted by client so the wrapped bytes (and hence the certified digest)
    are canonical. *)

val unwrap_image : string -> (string * (int * int) list) option
(** Inverse of {!wrap_image}; [None] on malformed bytes (a corrupt image
    also fails its digest check, this guards the decoder itself). *)

val equal_cert : cert -> cert -> bool

val write_cert : Sof_util.Codec.Writer.t -> cert -> unit
val read_cert : Sof_util.Codec.Reader.t -> cert

val write_entry : Sof_util.Codec.Writer.t -> entry -> unit
val read_entry : Sof_util.Codec.Reader.t -> entry
(** @raise Sof_util.Codec.Reader.Truncated on malformed input. *)

val pp_cert : Format.formatter -> cert -> unit
