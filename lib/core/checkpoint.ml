module Codec = Sof_util.Codec
module Request = Sof_smr.Request

type cert = {
  cp_seq : int;
  cp_digest : string;
  cp_proof : (int * string) list;
  cp_endorsement : (int * string) option;
}

type entry = {
  e_o : int;
  e_digest : string;
  e_requests : Request.t list;
}

let is_boundary ~interval seq = interval > 0 && seq > 0 && Int.equal (seq mod interval) 0

let image_digest alg image = Sof_crypto.Digest_alg.digest alg image

(* A checkpoint image carries the per-client delivery high-water marks
   alongside the service snapshot: the at-most-once filter is replicated
   state too.  A recovered process that lost it would re-deliver a request
   that a coordinator elected across a partition legally rebatches — PBFT
   keeps its reply cache inside the checkpoint for exactly this reason.
   The marks (not the raw delivered-key sets, which processes prune at
   their own pace) are deterministic: correct processes deliver the same
   order, so at the same boundary they hold the same marks and wrap
   byte-identical images. *)

let write_mark w (client, last) =
  Codec.Writer.varint w client;
  Codec.Writer.varint w last

let read_mark r =
  let client = Codec.Reader.varint r in
  let last = Codec.Reader.varint r in
  (client, last)

let wrap_image ~state ~marks =
  let w = Codec.Writer.create () in
  Codec.Writer.string w state;
  Codec.Writer.list w write_mark marks;
  Codec.Writer.contents w

let unwrap_image image =
  match
    let r = Codec.Reader.of_string image in
    let state = Codec.Reader.string r in
    let marks = Codec.Reader.list r read_mark in
    Codec.Reader.expect_end r;
    (state, marks)
  with
  | result -> Some result
  | exception Codec.Reader.Truncated -> None

let equal_tuple (i, s) (j, u) = Int.equal i j && String.equal s u

let equal_cert a b =
  Int.equal a.cp_seq b.cp_seq
  && String.equal a.cp_digest b.cp_digest
  && List.equal equal_tuple a.cp_proof b.cp_proof
  && Option.equal equal_tuple a.cp_endorsement b.cp_endorsement

let write_tuple w (signer, signature) =
  Codec.Writer.varint w signer;
  Codec.Writer.string w signature

let read_tuple r =
  let signer = Codec.Reader.varint r in
  let signature = Codec.Reader.string r in
  (signer, signature)

let write_cert w c =
  Codec.Writer.varint w c.cp_seq;
  Codec.Writer.string w c.cp_digest;
  Codec.Writer.list w write_tuple c.cp_proof;
  Codec.Writer.option w write_tuple c.cp_endorsement

let read_cert r =
  let cp_seq = Codec.Reader.varint r in
  let cp_digest = Codec.Reader.string r in
  let cp_proof = Codec.Reader.list r read_tuple in
  let cp_endorsement = Codec.Reader.option r read_tuple in
  { cp_seq; cp_digest; cp_proof; cp_endorsement }

let write_request w (req : Request.t) = Codec.Writer.string w (Request.encode req)

let read_request r = Request.decode (Codec.Reader.string r)

let write_entry w e =
  Codec.Writer.varint w e.e_o;
  Codec.Writer.string w e.e_digest;
  Codec.Writer.list w write_request e.e_requests

let read_entry r =
  let e_o = Codec.Reader.varint r in
  let e_digest = Codec.Reader.string r in
  let e_requests = Codec.Reader.list r read_request in
  { e_o; e_digest; e_requests }

let pp_cert fmt c =
  Format.fprintf fmt "checkpoint<seq=%d, %d signer%s%s>" c.cp_seq
    (List.length c.cp_proof)
    (if Int.equal (List.length c.cp_proof) 1 then "" else "s")
    (match c.cp_endorsement with Some (who, _) -> Printf.sprintf ", endorsed by %d" who | None -> "")
